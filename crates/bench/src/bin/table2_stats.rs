//! Table II: statistics of the four synthetic datasets.

use kucnet_bench::{print_table, write_results};
use kucnet_datasets::{DatasetProfile, DatasetStats, GeneratedDataset};

fn main() {
    let profiles = [
        DatasetProfile::lastfm_small(),
        DatasetProfile::amazon_book_small(),
        DatasetProfile::ifashion_small(),
        DatasetProfile::disgenet_small(),
    ];
    let rows: Vec<Vec<String>> = profiles
        .iter()
        .map(|p| {
            let stats = DatasetStats::of(&GeneratedDataset::generate(p, 42));
            vec![
                stats.name.clone(),
                stats.n_users.to_string(),
                stats.n_items.to_string(),
                stats.n_interactions.to_string(),
                stats.n_entities.to_string(),
                stats.n_relations.to_string(),
                stats.n_triplets.to_string(),
                format!("{:.2}", stats.item_triple_fraction),
            ]
        })
        .collect();
    let tsv = print_table(
        "Table II: dataset statistics (synthetic, scaled-down profiles)",
        &[
            "dataset",
            "#users",
            "#items",
            "#interactions",
            "#entities",
            "#relations",
            "#triplets",
            "item-triple-frac",
        ],
        &rows,
    );
    write_results("table2_stats.tsv", &tsv);
}
