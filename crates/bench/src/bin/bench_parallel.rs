//! Parallel training/evaluation benchmark: times one full KUCNet fit and
//! one evaluation pass at `threads = 1` versus a multi-threaded run on the
//! Last-FM-profile synthetic dataset, asserts both runs are bitwise
//! identical (losses and metrics), and writes `results/BENCH_parallel.json`
//! including the host's `available_parallelism` so recorded speedups can be
//! interpreted (a 1-core host cannot show wall-clock gains; determinism is
//! asserted regardless).

use std::time::Instant;

use kucnet::{KucNet, SelectorKind};
use kucnet_bench::{kucnet_config, write_results, HarnessOpts};
use kucnet_datasets::{traditional_split, DatasetProfile, GeneratedDataset, Split};
use kucnet_eval::{evaluate_with_threads, Metrics};

/// One timed fit + evaluate at a fixed thread count.
struct TimedRun {
    threads: usize,
    train_secs: f64,
    eval_secs: f64,
    losses: Vec<f32>,
    metrics: Metrics,
    /// Matrix-pool buffer allocations (fresh heap allocs) during the run —
    /// the allocation-regression canary: pooling keeps this near-constant
    /// per worker instead of linear in (epochs x users x ops).
    pool_fresh: u64,
    /// Pool acquires served by recycling an existing buffer.
    pool_reused: u64,
}

fn run(data: &GeneratedDataset, split: &Split, opts: &HarnessOpts, threads: usize) -> TimedRun {
    let ckg = data.build_ckg(&split.train);
    let config = kucnet_config(opts, SelectorKind::PprTopK, true).with_threads(threads);
    let mut model = KucNet::new(config, ckg);
    let (fresh0, reused0) = kucnet_tensor::global_pool_stats();
    let started = Instant::now();
    let losses = model.fit();
    let train_secs = started.elapsed().as_secs_f64();
    let started = Instant::now();
    let metrics = evaluate_with_threads(&model, split, opts.n, threads);
    let eval_secs = started.elapsed().as_secs_f64();
    let (fresh1, reused1) = kucnet_tensor::global_pool_stats();
    TimedRun {
        threads,
        train_secs,
        eval_secs,
        losses,
        metrics,
        pool_fresh: fresh1 - fresh0,
        pool_reused: reused1 - reused0,
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    let profile = if quick { DatasetProfile::tiny() } else { DatasetProfile::lastfm_small() };
    let data = GeneratedDataset::generate(&profile, opts.seed);
    let split = traditional_split(&data, 0.2, opts.seed);
    let hw = kucnet_par::max_threads();
    let par_threads = 4;

    eprintln!(
        "[bench_parallel] dataset={} epochs={} available_parallelism={hw}",
        profile.name, opts.epochs_kucnet
    );
    let serial = run(&data, &split, &opts, 1);
    let parallel = run(&data, &split, &opts, par_threads);

    let losses_identical = serial.losses.len() == parallel.losses.len()
        && serial.losses.iter().zip(&parallel.losses).all(|(a, b)| a.to_bits() == b.to_bits());
    let metrics_identical = serial.metrics.recall.to_bits() == parallel.metrics.recall.to_bits()
        && serial.metrics.ndcg.to_bits() == parallel.metrics.ndcg.to_bits();
    assert!(losses_identical, "loss curves diverged: {:?} vs {:?}", serial.losses, parallel.losses);
    assert!(metrics_identical, "metrics diverged: {:?} vs {:?}", serial.metrics, parallel.metrics);

    let speedup = |a: f64, b: f64| if b > 0.0 { a / b } else { 0.0 };
    let train_speedup = speedup(serial.train_secs, parallel.train_secs);
    let eval_speedup = speedup(serial.eval_secs, parallel.eval_secs);

    println!("\n== Parallel training & evaluation benchmark ==");
    println!("dataset           {} (seed {})", profile.name, opts.seed);
    println!("host parallelism  {hw}");
    for r in [&serial, &parallel] {
        println!(
            "threads={:<2}        train {:>7.2}s   eval {:>6.2}s   recall {:.4}",
            r.threads, r.train_secs, r.eval_secs, r.metrics.recall
        );
    }
    println!("speedup           train {train_speedup:.2}x, eval {eval_speedup:.2}x");
    println!("determinism       losses identical: {losses_identical}, metrics identical: {metrics_identical}");
    println!(
        "pool allocations  serial fresh {} / reused {}, parallel fresh {} / reused {}",
        serial.pool_fresh, serial.pool_reused, parallel.pool_fresh, parallel.pool_reused
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"dataset\": \"{}\",\n",
            "  \"epochs\": {},\n",
            "  \"available_parallelism\": {},\n",
            "  \"serial_train_secs\": {:.3},\n",
            "  \"serial_eval_secs\": {:.3},\n",
            "  \"parallel_threads\": {},\n",
            "  \"parallel_train_secs\": {:.3},\n",
            "  \"parallel_eval_secs\": {:.3},\n",
            "  \"train_speedup\": {:.3},\n",
            "  \"eval_speedup\": {:.3},\n",
            "  \"losses_identical\": {},\n",
            "  \"metrics_identical\": {},\n",
            "  \"serial_pool_fresh_allocs\": {},\n",
            "  \"serial_pool_reused_allocs\": {},\n",
            "  \"parallel_pool_fresh_allocs\": {},\n",
            "  \"parallel_pool_reused_allocs\": {}\n",
            "}}\n"
        ),
        profile.name,
        opts.epochs_kucnet,
        hw,
        serial.train_secs,
        serial.eval_secs,
        parallel.threads,
        parallel.train_secs,
        parallel.eval_secs,
        train_speedup,
        eval_speedup,
        losses_identical,
        metrics_identical,
        serial.pool_fresh,
        serial.pool_reused,
        parallel.pool_fresh,
        parallel.pool_reused,
    );
    write_results("BENCH_parallel.json", &json);
}
