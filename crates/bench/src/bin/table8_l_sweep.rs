//! Table VIII: effect of model depth L ∈ {3, 4, 5} on recall@20 across the
//! three product datasets, in traditional and new-item settings.

use kucnet_bench::{fit_and_eval, print_table, write_results, HarnessOpts, ModelKind};
use kucnet_datasets::{new_item_split, traditional_split, DatasetProfile, GeneratedDataset};

fn main() {
    let base = HarnessOpts::from_args();
    let depths = [3usize, 4, 5];
    let sweeps: Vec<(&str, DatasetProfile, bool)> = vec![
        ("lastfm", DatasetProfile::lastfm_small(), false),
        ("amazon-book", DatasetProfile::amazon_book_small(), false),
        ("ifashion", DatasetProfile::ifashion_small(), false),
        ("new-lastfm", DatasetProfile::lastfm_small(), true),
        ("new-amazon-book", DatasetProfile::amazon_book_small(), true),
        ("new-ifashion", DatasetProfile::ifashion_small(), true),
    ];
    let mut rows = Vec::new();
    for (label, profile, new_item) in sweeps {
        let data = GeneratedDataset::generate(&profile, 42);
        let split = if new_item {
            new_item_split(&data, 0, 5, base.seed)
        } else {
            traditional_split(&data, 0.2, base.seed)
        };
        let mut row = vec![label.to_string()];
        for &depth in &depths {
            let opts = HarnessOpts {
                depth,
                k: if new_item { 30 } else { base.k },
                epochs_kucnet: if new_item { 5 } else { base.epochs_kucnet },
                learning_rate: if new_item { 1e-2 } else { base.learning_rate },
                ..base.clone()
            };
            let r = fit_and_eval(ModelKind::KucNet, &data, &split, &opts);
            eprintln!(
                "  [{label}] L={depth}: recall={:.4} ({:.1}s)",
                r.metrics.recall, r.train_secs
            );
            row.push(format!("{:.4}", r.metrics.recall));
        }
        rows.push(row);
    }
    let tsv = print_table(
        "Table VIII: model depth L (recall@20)",
        &["dataset", "L=3", "L=4", "L=5"],
        &rows,
    );
    write_results("table8_l_sweep.tsv", &tsv);
}
