//! Hot-swap benchmark: latency and availability of a zero-downtime model
//! reload landing mid-burst. Writes `results/BENCH_swap.json`.
//!
//! Generation A (fault-injected, 10% build panics) serves a concurrent
//! request burst; roughly a quarter of the way in, `POST /admin/reload`
//! swaps in generation B from a `KUCP` checkpoint through the registered
//! [`ModelLoader`]. The harness records the observed swap latency (the
//! reload round-trip), how many requests each generation answered across
//! the window, availability (every request must come back 200 or 500 —
//! never dropped), and whether the worker pool healed afterwards.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use kucnet::{KucNet, KucNetConfig, ScoreService, SelectorKind};
use kucnet_bench::{git_commit, kucnet_config, write_results, HarnessOpts};
use kucnet_datasets::{DatasetProfile, GeneratedDataset};
use kucnet_graph::Ckg;
use kucnet_serve::{FaultConfig, FaultyService, ModelLoader, ModelRegistry, ServeConfig, Server};

/// Sends one raw HTTP request; returns `(status, body)`, status 0 on any
/// transport failure (counted as a non-answer).
fn send(addr: std::net::SocketAddr, raw: &str) -> (u16, String) {
    let Ok(mut stream) = TcpStream::connect(addr) else { return (0, String::new()) };
    if stream.write_all(raw.as_bytes()).is_err() {
        return (0, String::new());
    }
    let mut text = String::new();
    if BufReader::new(stream).read_to_string(&mut text).is_err() {
        return (0, String::new());
    }
    let status = text.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// POSTs a JSON body to `path`.
fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    send(addr, &raw)
}

/// One `POST /recommend`; returns `(status, model_version)` with version 0
/// when unattributable.
fn recommend(addr: std::net::SocketAddr, user: u64, top_k: u64) -> (u16, u64) {
    let (status, body) =
        post(addr, "/recommend", &format!("{{\"user\": {user}, \"top_k\": {top_k}}}"));
    let version = body
        .split_once("\"model_version\":")
        .map(|(_, rest)| rest.chars().take_while(char::is_ascii_digit).collect::<String>())
        .and_then(|digits| digits.parse().ok())
        .unwrap_or(0);
    (status, version)
}

/// Builds replacement models from `KUCP` checkpoints.
struct KucpLoader {
    config: KucNetConfig,
    ckg: Ckg,
}

impl ModelLoader for KucpLoader {
    fn load(&self, _variant: &str, path: &str) -> Result<Arc<dyn ScoreService>, String> {
        let mut model = KucNet::new(self.config.clone(), self.ckg.clone());
        model.load_params(path).map_err(|e| format!("checkpoint load failed: {e}"))?;
        Ok(Arc::new(model))
    }
}

fn main() {
    // Injected panics fire by the dozen here; keep their backtraces out of
    // the benchmark output. Genuine panics still print via the old hook.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info.payload().downcast_ref::<kucnet_serve::InjectedFault>().is_some()
            || info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with("injected panic"));
        if !injected {
            default_hook(info);
        }
    }));

    let opts = HarnessOpts::from_args();
    let quick = std::env::args().any(|a| a == "--quick");
    let (n_requests, n_clients) = if quick { (40, 4) } else { (200, 8) };
    let workers = 3usize;

    let profile = DatasetProfile::tiny();
    let data = GeneratedDataset::generate(&profile, opts.seed);
    let ckg = data.build_ckg(&data.interactions);
    let config_a = kucnet_config(&opts, SelectorKind::PprTopK, true);
    let mut gen_a = KucNet::new(config_a.clone(), ckg.clone());
    eprintln!("[bench_swap] training generation A ({} epochs)...", opts.epochs_kucnet);
    gen_a.fit();
    let n_users = gen_a.n_users() as u64;

    // Generation B: same shapes, different initialization seed — written
    // out as a checkpoint so the reload exercises the full loader path.
    let config_b = config_a.clone().with_seed(opts.seed ^ 0x5A4F);
    let gen_b = KucNet::new(config_b.clone(), ckg.clone());
    let ckpt = std::env::temp_dir().join(format!("kucnet_bench_swap_{}.kucp", std::process::id()));
    gen_b.save_params(&ckpt).expect("save checkpoint");

    let faults =
        FaultConfig { seed: opts.seed ^ 0xC4A0_5EED, panic_rate: 0.1, ..FaultConfig::default() };
    let service: Arc<dyn ScoreService> = Arc::new(FaultyService::new(Arc::new(gen_a), faults));
    let serve_config = ServeConfig { workers, cache_capacity: 4, ..ServeConfig::default() };
    let registry = Arc::new(ModelRegistry::single(service, serve_config.ab_seed));
    let loader = Arc::new(KucpLoader { config: config_b, ckg });
    let handle = Server::start_full(registry, Some(loader), None, serve_config, "127.0.0.1:0")
        .expect("bind ephemeral port");
    let addr = handle.addr();
    eprintln!("[bench_swap] {n_clients} clients x {n_requests} requests, swap at ~25%");

    let started = Instant::now();
    let clients: Vec<_> = (0..n_clients)
        .map(|c| {
            std::thread::spawn(move || {
                // (200@old, 200@new, 500, other)
                let mut counts = (0u64, 0u64, 0u64, 0u64);
                for i in 0..n_requests {
                    let user = ((c * 7919 + i * 104_729) as u64) % n_users;
                    match recommend(addr, user, 10) {
                        (200, 1) => counts.0 += 1,
                        (200, _) => counts.1 += 1,
                        (500, _) => counts.2 += 1,
                        _ => counts.3 += 1,
                    }
                }
                counts
            })
        })
        .collect();

    // Land the reload roughly a quarter of the way into the burst and time
    // the round-trip: parse + checkpoint load + registry swap.
    std::thread::sleep(Duration::from_millis(if quick { 20 } else { 60 }));
    let ckpt_json = ckpt.to_str().expect("utf-8 temp path").replace('\\', "\\\\");
    let swap_started = Instant::now();
    let (status, body) = post(
        addr,
        "/admin/reload",
        &format!("{{\"variant\": \"default\", \"path\": \"{ckpt_json}\"}}"),
    );
    let swap_latency_us = swap_started.elapsed().as_micros() as u64;
    assert_eq!(status, 200, "reload failed: {body}");
    eprintln!("[bench_swap] swap done in {swap_latency_us}us: {body}");

    let (mut old_ok, mut new_ok, mut failed, mut other) = (0u64, 0u64, 0u64, 0u64);
    for client in clients {
        let (a, b, c, d) = client.join().expect("client");
        old_ok += a;
        new_ok += b;
        failed += c;
        other += d;
    }
    let wall_secs = started.elapsed().as_secs_f64();

    // Pool heal check: generation B is un-faulted, so once the burst
    // drains the supervisor should hold the pool at full strength.
    let deadline = Instant::now() + Duration::from_secs(5);
    let pool_healed = loop {
        let stats = handle.batcher_stats();
        if stats.workers_alive == workers as u64 {
            break true;
        }
        if Instant::now() >= deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    let batch = handle.batcher_stats();
    let swaps_total = handle.registry().swaps_total();
    handle.shutdown();
    let _ = std::fs::remove_file(&ckpt);

    let total = (n_clients * n_requests) as u64;
    let answered_200 = old_ok + new_ok;
    let availability = if total > 0 { answered_200 as f64 / total as f64 } else { 0.0 };
    println!("\n== Hot-swap benchmark (reload mid-burst under faults) ==");
    println!(
        "swap_us={swap_latency_us} old_200={old_ok} new_200={new_ok} 500={failed} \
         other={other} avail={availability:.3} healed={pool_healed}"
    );
    if old_ok == 0 || new_ok == 0 {
        eprintln!(
            "[bench_swap] WARNING: swap window one-sided (old={old_ok}, new={new_ok}); \
             rerun without --quick for a wider window"
        );
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"profile\": \"{}\",\n",
            "  \"seed\": {},\n",
            "  \"threads\": {},\n",
            "  \"git_commit\": \"{}\",\n",
            "  \"workers\": {},\n",
            "  \"swap_latency_us\": {},\n",
            "  \"swaps_total\": {},\n",
            "  \"served_old_version\": {},\n",
            "  \"served_new_version\": {},\n",
            "  \"answered_200\": {},\n",
            "  \"answered_500\": {},\n",
            "  \"unanswered\": {},\n",
            "  \"availability\": {:.4},\n",
            "  \"panics_total\": {},\n",
            "  \"workers_respawned\": {},\n",
            "  \"pool_healed\": {},\n",
            "  \"wall_secs\": {:.3}\n",
            "}}\n"
        ),
        profile.name,
        opts.seed,
        workers,
        git_commit(),
        workers,
        swap_latency_us,
        swaps_total,
        old_ok,
        new_ok,
        answered_200,
        failed,
        other,
        availability,
        batch.panics_total,
        batch.workers_respawned,
        pool_healed,
        wall_secs,
    );
    write_results("BENCH_swap.json", &json);
}
