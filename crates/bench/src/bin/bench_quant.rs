//! Quantized-serving benchmark: f32 vs i8 scoring on every paper dataset
//! profile. Writes `results/BENCH_quant.json`.
//!
//! For each profile the harness builds one model, quantizes its weights
//! (the load-time step `ModelRegistry` performs), precomputes each sampled
//! user's layer-1 [`UserState`](kucnet::UserState) in both precisions, and
//! then measures three scoring paths per user:
//!
//! - **f32 full** — the cold path: full L-layer f32 propagation.
//! - **f32 warm** — f32 resume from the cached `UserState` (layer-1 skip).
//! - **quant warm** — the i8 path resumed from its own `UserState`: the
//!   production hot path when a variant serves quantized.
//!
//! Reported per profile: throughput (scores/sec), exact p50/p95/p99 over
//! the per-call latency samples, and the top-20 f32-vs-i8 rank overlap the
//! parity gate enforces. Without `--smoke`/`--quick` the binary **exits
//! nonzero** unless at least one paper profile shows quant-warm throughput
//! ≥ 1.5× f32-warm with a p99 that is no worse — the ISSUE 9 acceptance
//! bar — so harness runs cannot silently record a regression.

use std::time::Instant;

use kucnet::{KucNet, ScoreService, SelectorKind};
use kucnet_bench::{git_commit, kucnet_config, write_results, HarnessOpts};
use kucnet_datasets::{DatasetProfile, GeneratedDataset};
use kucnet_eval::top_n_indices;
use kucnet_graph::UserId;

/// Ranked-prefix size for the f32-vs-i8 overlap column.
const TOP_N: usize = 20;

/// Exact percentile (µs) from an unsorted latency sample.
fn percentile_us(samples: &mut [u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// Throughput + latency percentiles of one scoring path.
struct PathStats {
    rps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
}

/// Times `score(user_index)` over `rounds` passes of the user sample.
fn time_path(n_users: usize, rounds: usize, mut score: impl FnMut(usize)) -> PathStats {
    // One untimed pass warms the matrix pool and the branch predictors.
    for u in 0..n_users {
        score(u);
    }
    let mut samples = Vec::with_capacity(n_users * rounds);
    let started = Instant::now();
    for _ in 0..rounds {
        for u in 0..n_users {
            let call = Instant::now();
            score(u);
            samples.push(u64::try_from(call.elapsed().as_micros()).unwrap_or(u64::MAX));
        }
    }
    let total = started.elapsed().as_secs_f64().max(1e-9);
    PathStats {
        rps: samples.len() as f64 / total,
        p50_us: percentile_us(&mut samples, 0.50),
        p95_us: percentile_us(&mut samples, 0.95),
        p99_us: percentile_us(&mut samples, 0.99),
    }
}

/// |top-N(a) ∩ top-N(b)| / N.
fn overlap_at_n(a: &[f32], b: &[f32], n: usize) -> f64 {
    let ta = top_n_indices(a, n);
    let tb = top_n_indices(b, n);
    let hits = ta.iter().filter(|i| tb.contains(i)).count();
    hits as f64 / ta.len().max(1) as f64
}

struct ProfileReport {
    name: &'static str,
    users: usize,
    overlap_mean: f64,
    overlap_worst: f64,
    f32_full: PathStats,
    f32_warm: PathStats,
    quant_warm: PathStats,
    warm_speedup: f64,
}

fn bench_profile(
    name: &'static str,
    profile: &DatasetProfile,
    opts: &HarnessOpts,
    epochs: usize,
    sample_users: usize,
    rounds: usize,
) -> ProfileReport {
    let data = GeneratedDataset::generate(profile, opts.seed);
    let ckg = data.build_ckg(&data.interactions);
    let mut config = kucnet_config(opts, SelectorKind::PprTopK, true);
    config.epochs = epochs;
    let mut model = KucNet::new(config, ckg);
    if epochs > 0 {
        eprintln!("[bench_quant] {name}: training {epochs} epochs...");
        model.fit();
    }
    assert!(model.prepare_quantized(), "{name}: quantizing master weights failed");

    let stash = kucnet_tensor::PoolStash::new();
    let mut pool = stash.checkout();
    let users = model.n_users().min(sample_users);
    // The user sample, with both precisions' states materialized up front
    // (cache-fill work, excluded from the warm-path timings).
    let mut graphs = Vec::with_capacity(users);
    for u in 0..users {
        let graph = model.build_user_graph(UserId(u as u32));
        let f32_state = model.build_user_state(&mut pool, &graph, false);
        let quant_state = model.build_user_state(&mut pool, &graph, true);
        graphs.push((graph, f32_state, quant_state));
    }

    let (mut total, mut worst) = (0.0f64, 1.0f64);
    for (graph, _, _) in &graphs {
        let exact = model.score_graph_pooled(&mut pool, graph);
        let quant = model.score_graph_quant_pooled(&mut pool, graph);
        let overlap = overlap_at_n(&exact, &quant, TOP_N);
        total += overlap;
        worst = worst.min(overlap);
    }
    let overlap_mean = total / graphs.len().max(1) as f64;

    let f32_full = time_path(users, rounds, |u| {
        let _ = model.score_graph_pooled(&mut pool, &graphs[u].0);
    });
    let f32_warm = time_path(users, rounds, |u| {
        let (graph, state, _) = &graphs[u];
        let _ = match state {
            Some(s) => model.score_graph_from_state(&mut pool, graph, s),
            None => model.score_graph_pooled(&mut pool, graph),
        };
    });
    let quant_warm = time_path(users, rounds, |u| {
        let (graph, _, state) = &graphs[u];
        let _ = match state {
            Some(s) => model.score_graph_from_state(&mut pool, graph, s),
            None => model.score_graph_quant_pooled(&mut pool, graph),
        };
    });
    let warm_speedup = quant_warm.rps / f32_warm.rps.max(1e-9);

    ProfileReport {
        name,
        users,
        overlap_mean,
        overlap_worst: worst,
        f32_full,
        f32_warm,
        quant_warm,
        warm_speedup,
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let quick = std::env::args().any(|a| a == "--quick");
    let (epochs, sample_users, rounds) = if smoke {
        (0, 12, 2)
    } else if quick {
        (0, 32, 4)
    } else {
        (2, 64, 8)
    };

    let profiles: [(&str, DatasetProfile); 4] = [
        ("lastfm-small", DatasetProfile::lastfm_small()),
        ("amazon-book-small", DatasetProfile::amazon_book_small()),
        ("ifashion-small", DatasetProfile::ifashion_small()),
        ("disgenet-small", DatasetProfile::disgenet_small()),
    ];
    eprintln!("[bench_quant] smoke={smoke} quick={quick} users/profile={sample_users}");

    let reports: Vec<ProfileReport> = profiles
        .iter()
        .map(|(name, p)| bench_profile(name, p, &opts, epochs, sample_users, rounds))
        .collect();

    println!("\n== Quantized serving benchmark (f32 vs i8) ==");
    for r in &reports {
        println!(
            "{:<18} overlap@{TOP_N} {:.4} (worst {:.4})   f32_warm {:>7.0}/s p99={}us   \
             quant_warm {:>7.0}/s p99={}us   {:.2}x",
            r.name,
            r.overlap_mean,
            r.overlap_worst,
            r.f32_warm.rps,
            r.f32_warm.p99_us,
            r.quant_warm.rps,
            r.quant_warm.p99_us,
            r.warm_speedup
        );
    }
    let best = reports
        .iter()
        .max_by(|a, b| a.warm_speedup.total_cmp(&b.warm_speedup))
        .expect("at least one profile");
    let gate_ok =
        reports.iter().any(|r| r.warm_speedup >= 1.5 && r.quant_warm.p99_us <= r.f32_warm.p99_us);
    println!(
        "best warm-path speedup: {:.2}x on {} (acceptance gate {})",
        best.warm_speedup,
        best.name,
        if gate_ok { "met" } else { "NOT met" }
    );

    let path = |s: &PathStats| {
        format!(
            "{{\"rps\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}",
            s.rps, s.p50_us, s.p95_us, s.p99_us
        )
    };
    let mut profile_json = String::new();
    for (k, r) in reports.iter().enumerate() {
        profile_json.push_str(&format!(
            concat!(
                "    {{\"profile\": \"{}\", \"users\": {}, \"epochs\": {}, ",
                "\"overlap_mean\": {:.4}, \"overlap_worst\": {:.4},\n",
                "     \"f32_full\": {}, \"f32_warm\": {}, \"quant_warm\": {}, ",
                "\"warm_speedup\": {:.3}}}{}\n"
            ),
            r.name,
            r.users,
            epochs,
            r.overlap_mean,
            r.overlap_worst,
            path(&r.f32_full),
            path(&r.f32_warm),
            path(&r.quant_warm),
            r.warm_speedup,
            if k + 1 < reports.len() { "," } else { "" },
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"smoke\": {},\n",
            "  \"seed\": {},\n",
            "  \"threads\": 1,\n",
            "  \"git_commit\": \"{}\",\n",
            "  \"top_n\": {},\n",
            "  \"profiles\": [\n",
            "{}",
            "  ],\n",
            "  \"best_warm_speedup\": {:.3},\n",
            "  \"gate_speedup_ok\": {}\n",
            "}}\n"
        ),
        smoke,
        opts.seed,
        git_commit(),
        TOP_N,
        profile_json,
        best.warm_speedup,
        gate_ok,
    );
    write_results("BENCH_quant.json", &json);

    if !smoke && !quick && !gate_ok {
        eprintln!(
            "[bench_quant] FAILED: no profile reached 1.5x warm-path speedup \
             with p99 no worse than f32"
        );
        std::process::exit(1);
    }
}
