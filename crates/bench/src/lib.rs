//! # kucnet-bench
//!
//! Benchmark harnesses regenerating every table and figure of the KUCNet
//! paper's evaluation section on the synthetic datasets. Each `src/bin/`
//! binary prints one table/figure and appends a TSV copy under `results/`.
//!
//! | binary | reproduces |
//! |---|---|
//! | `table2_stats` | Table II (dataset statistics) |
//! | `table3_traditional` | Table III (traditional recommendation) |
//! | `table4_new_item` | Table IV (new-item recommendation) |
//! | `table5_disgenet` | Table V (DisGeNet new item / new user) |
//! | `table6_runtime` | Table VI (PPR / training / inference minutes) |
//! | `table7_k_sweep` | Table VII (sampling size K) |
//! | `table8_l_sweep` | Table VIII (model depth L) |
//! | `table9_ablation` | Table IX (KUCNet variants) |
//! | `fig4_learning_curves` | Figure 4 (metric vs training time) |
//! | `fig5_params` | Figure 5 (model parameter counts) |
//! | `fig6_inference` | Figure 6 (inference time and #edges) |
//! | `fig7_explain` | Figure 7 (learned subgraph visualizations) |
//! | `ablation_extras` | beyond-paper ablations (activation δ, dropout) |
//! | `bench_serve` | online serving: latency percentiles, cache hit rate |
//! | `bench_quant` | f32 vs i8 serving: warm-path throughput, rank overlap |
//!
//! All binaries accept `--quick` (fewer epochs, for smoke runs) and print
//! deterministic output for a fixed seed.

#![warn(missing_docs)]

use std::time::Instant;

use kucnet::{KucNet, KucNetConfig, SelectorKind};
use kucnet_baselines::{
    BaselineConfig, Ckan, Cke, Fm, Kgat, Kgin, KgnnLs, Mf, Nfm, PathSim, PprRec, RedGnn, RippleNet,
};
use kucnet_datasets::{GeneratedDataset, Split};
use kucnet_eval::{evaluate, Metrics, Recommender};

/// Which model to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKind {
    /// BPR matrix factorization.
    Mf,
    /// Factorization machine.
    Fm,
    /// Neural factorization machine.
    Nfm,
    /// RippleNet.
    RippleNet,
    /// KGNN-LS.
    KgnnLs,
    /// CKAN.
    Ckan,
    /// KGIN.
    Kgin,
    /// CKE.
    Cke,
    /// R-GCN.
    Rgcn,
    /// KGAT.
    Kgat,
    /// Personalized PageRank scoring.
    Ppr,
    /// PathSim meta-path similarity.
    PathSim,
    /// RED-GNN.
    RedGnn,
    /// Full KUCNet.
    KucNet,
    /// KUCNet with random instead of PPR sampling.
    KucNetRandom,
    /// KUCNet without edge attention.
    KucNetNoAttn,
    /// KUCNet without any pruning.
    KucNetNoPpr,
}

impl ModelKind {
    /// The eleven models of Table III, in the paper's row order.
    pub fn table3_lineup() -> Vec<ModelKind> {
        use ModelKind::*;
        vec![Mf, Fm, Nfm, RippleNet, KgnnLs, Ckan, Kgin, Cke, Rgcn, Kgat, KucNet]
    }

    /// The fourteen models of Table IV (adds the inductive baselines).
    pub fn table4_lineup() -> Vec<ModelKind> {
        use ModelKind::*;
        vec![
            Mf, Fm, Nfm, RippleNet, KgnnLs, Ckan, Kgin, Cke, Rgcn, Kgat, Ppr, PathSim, RedGnn,
            KucNet,
        ]
    }
}

/// Harness-wide options.
#[derive(Clone, Debug)]
pub struct HarnessOpts {
    /// Epochs for KUCNet-family models (per-user propagation is costlier).
    pub epochs_kucnet: usize,
    /// Epochs for the embedding baselines.
    pub epochs_baseline: usize,
    /// PPR top-K sampling size for KUCNet.
    pub k: usize,
    /// Model depth L for KUCNet-family models.
    pub depth: usize,
    /// Top-N cutoff for metrics.
    pub n: usize,
    /// Interaction-edge dropout for KUCNet training (see DESIGN.md §6.3).
    pub ui_edge_dropout: f32,
    /// KUCNet learning rate — tuned per scenario as the paper does
    /// (5e-3 traditional, 1e-2 in the new-item/new-user settings).
    pub learning_rate: f32,
    /// Seed shared by dataset splits and model init.
    pub seed: u64,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        Self {
            epochs_kucnet: 6,
            epochs_baseline: 15,
            k: 15,
            depth: 3,
            n: 20,
            ui_edge_dropout: 0.0,
            learning_rate: 5e-3,
            seed: 0,
        }
    }
}

impl HarnessOpts {
    /// Applies `--quick` from the command line: 2/4 epochs.
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        if std::env::args().any(|a| a == "--quick") {
            opts.epochs_kucnet = 2;
            opts.epochs_baseline = 4;
        }
        opts
    }
}

/// The outcome of one (model, dataset, split) run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Model display name.
    pub model: String,
    /// Evaluation metrics.
    pub metrics: Metrics,
    /// Wall-clock training seconds (0 for non-parametric models).
    pub train_secs: f64,
    /// Wall-clock seconds of the full evaluation pass.
    pub eval_secs: f64,
    /// Scalar parameter count.
    pub params: usize,
    /// PPR preprocessing seconds (KUCNet only; 0 elsewhere).
    pub ppr_secs: f64,
}

/// KUCNet config derived from harness options.
pub fn kucnet_config(opts: &HarnessOpts, selector: SelectorKind, attention: bool) -> KucNetConfig {
    KucNetConfig {
        k: opts.k,
        depth: opts.depth,
        selector,
        attention,
        epochs: opts.epochs_kucnet,
        ui_edge_dropout: opts.ui_edge_dropout,
        learning_rate: opts.learning_rate,
        seed: opts.seed,
        ..KucNetConfig::default()
    }
}

/// Trains `kind` on `split.train` and evaluates it on `split.test`.
pub fn fit_and_eval(
    kind: ModelKind,
    data: &GeneratedDataset,
    split: &Split,
    opts: &HarnessOpts,
) -> RunResult {
    let ckg = data.build_ckg(&split.train);
    let bc = BaselineConfig {
        epochs: opts.epochs_baseline,
        seed: opts.seed,
        ..BaselineConfig::default()
    };
    let started = Instant::now();
    let (rec, ppr_secs): (Box<dyn Recommender + Sync>, f64) = match kind {
        ModelKind::Mf => {
            let mut m = Mf::new(bc, ckg);
            m.fit();
            (Box::new(m), 0.0)
        }
        ModelKind::Fm => {
            let mut m = Fm::new(bc, ckg);
            m.fit();
            (Box::new(m), 0.0)
        }
        ModelKind::Nfm => {
            let mut m = Nfm::new(bc, ckg);
            m.fit();
            (Box::new(m), 0.0)
        }
        ModelKind::RippleNet => {
            let mut m = RippleNet::new(bc, ckg);
            m.fit();
            (Box::new(m), 0.0)
        }
        ModelKind::KgnnLs => {
            let mut m = KgnnLs::new(bc, ckg);
            m.fit();
            (Box::new(m), 0.0)
        }
        ModelKind::Ckan => {
            let mut m = Ckan::new(bc, ckg);
            m.fit();
            (Box::new(m), 0.0)
        }
        ModelKind::Kgin => {
            let mut m = Kgin::new(bc, ckg);
            m.fit();
            (Box::new(m), 0.0)
        }
        ModelKind::Cke => {
            let mut m = Cke::new(bc, ckg);
            m.fit();
            (Box::new(m), 0.0)
        }
        ModelKind::Rgcn => {
            let mut m = kucnet_baselines::Rgcn::new(bc, ckg);
            m.fit();
            (Box::new(m), 0.0)
        }
        ModelKind::Kgat => {
            let mut m = Kgat::new(bc, ckg);
            m.fit();
            (Box::new(m), 0.0)
        }
        ModelKind::Ppr => (Box::new(PprRec::new(ckg)), 0.0),
        ModelKind::PathSim => (Box::new(PathSim::new(ckg)), 0.0),
        ModelKind::RedGnn => {
            let rc = BaselineConfig { epochs: opts.epochs_kucnet, ..bc };
            let mut m = RedGnn::new(rc, ckg);
            m.fit();
            (Box::new(m), 0.0)
        }
        ModelKind::KucNet => {
            let mut m = KucNet::new(kucnet_config(opts, SelectorKind::PprTopK, true), ckg);
            let ppr = m.ppr_seconds;
            m.fit();
            (Box::new(m), ppr)
        }
        ModelKind::KucNetRandom => {
            let mut m = KucNet::new(kucnet_config(opts, SelectorKind::RandomK, true), ckg);
            m.fit();
            (Box::new(m), 0.0)
        }
        ModelKind::KucNetNoAttn => {
            let mut m = KucNet::new(kucnet_config(opts, SelectorKind::PprTopK, false), ckg);
            let ppr = m.ppr_seconds;
            m.fit();
            (Box::new(m), ppr)
        }
        ModelKind::KucNetNoPpr => {
            let mut m = KucNet::new(kucnet_config(opts, SelectorKind::KeepAll, true), ckg);
            m.fit();
            (Box::new(m), 0.0)
        }
    };
    let train_secs = started.elapsed().as_secs_f64();
    let eval_started = Instant::now();
    let metrics = evaluate(rec.as_ref(), split, opts.n);
    let eval_secs = eval_started.elapsed().as_secs_f64();
    RunResult {
        model: rec.name(),
        metrics,
        train_secs,
        eval_secs,
        params: rec.num_params(),
        ppr_secs,
    }
}

/// Mean and sample standard deviation over per-fold metric values — the
/// paper reports `mean ± std` over folds (e.g. Table V's 5-fold protocol).
#[derive(Clone, Copy, Debug, Default)]
pub struct FoldStats {
    /// Mean recall across folds.
    pub recall_mean: f64,
    /// Sample standard deviation of recall.
    pub recall_std: f64,
    /// Mean NDCG across folds.
    pub ndcg_mean: f64,
    /// Sample standard deviation of NDCG.
    pub ndcg_std: f64,
}

impl FoldStats {
    /// Aggregates per-fold metrics.
    pub fn from_metrics(folds: &[Metrics]) -> Self {
        let n = folds.len().max(1) as f64;
        let rm = folds.iter().map(|m| m.recall).sum::<f64>() / n;
        let nm = folds.iter().map(|m| m.ndcg).sum::<f64>() / n;
        let var = |mean: f64, get: fn(&Metrics) -> f64| {
            if folds.len() < 2 {
                0.0
            } else {
                folds.iter().map(|m| (get(m) - mean).powi(2)).sum::<f64>()
                    / (folds.len() - 1) as f64
            }
        };
        Self {
            recall_mean: rm,
            recall_std: var(rm, |m| m.recall).sqrt(),
            ndcg_mean: nm,
            ndcg_std: var(nm, |m| m.ndcg).sqrt(),
        }
    }

    /// `0.1234±0.0010`-style rendering of the recall column.
    pub fn display_recall(&self) -> String {
        format!("{:.4}±{:.4}", self.recall_mean, self.recall_std)
    }
}

/// Runs `kind` on several folds produced by `make_split(fold)` and
/// aggregates the metrics (the paper's 5-fold protocol for DisGeNet).
pub fn fit_and_eval_folds(
    kind: ModelKind,
    data: &GeneratedDataset,
    n_folds: usize,
    opts: &HarnessOpts,
    make_split: impl Fn(usize) -> Split,
) -> FoldStats {
    let metrics: Vec<Metrics> = (0..n_folds)
        .map(|fold| fit_and_eval(kind, data, &make_split(fold), opts).metrics)
        .collect();
    FoldStats::from_metrics(&metrics)
}

/// Prints an aligned results table and returns the TSV body.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (k, cell) in row.iter().enumerate() {
            widths[k] = widths[k].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(k, c)| format!("{:<w$}", c, w = widths[k] + 2))
            .collect::<String>()
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    let mut tsv = String::new();
    tsv.push_str(&headers.join("\t"));
    tsv.push('\n');
    for row in rows {
        println!("{}", fmt_row(row));
        tsv.push_str(&row.join("\t"));
        tsv.push('\n');
    }
    tsv
}

/// The short git commit hash of the working tree, or `"unknown"` when git
/// is unavailable (e.g. a source tarball). Stamped into every `BENCH_*.json`
/// so recorded numbers stay attributable to the code that produced them.
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Writes a TSV report under `results/` (created on demand).
pub fn write_results(name: &str, tsv: &str) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(name);
        if let Err(e) = std::fs::write(&path, tsv) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("(written to {})", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kucnet_datasets::{traditional_split, DatasetProfile};

    #[test]
    fn fit_and_eval_runs_cheap_models() {
        let data = GeneratedDataset::generate(&DatasetProfile::tiny(), 1);
        let split = traditional_split(&data, 0.2, 1);
        let opts = HarnessOpts { epochs_kucnet: 1, epochs_baseline: 1, ..HarnessOpts::default() };
        for kind in [ModelKind::Mf, ModelKind::Ppr, ModelKind::PathSim] {
            let r = fit_and_eval(kind, &data, &split, &opts);
            assert!(r.metrics.recall >= 0.0 && r.metrics.recall <= 1.0, "{kind:?}");
        }
    }

    #[test]
    fn table_printer_produces_tsv() {
        let rows = vec![vec!["a".to_string(), "1".to_string()]];
        let tsv = print_table("t", &["model", "x"], &rows);
        assert_eq!(tsv, "model\tx\na\t1\n");
    }

    #[test]
    fn fold_stats_mean_and_std() {
        let folds = vec![Metrics { recall: 0.2, ndcg: 0.1 }, Metrics { recall: 0.4, ndcg: 0.3 }];
        let s = FoldStats::from_metrics(&folds);
        assert!((s.recall_mean - 0.3).abs() < 1e-12);
        assert!((s.recall_std - (0.02f64).sqrt()).abs() < 1e-9);
        assert!(s.display_recall().contains('±'));
    }

    #[test]
    fn fold_runner_aggregates() {
        let data = GeneratedDataset::generate(&kucnet_datasets::DatasetProfile::tiny(), 1);
        let opts = HarnessOpts { epochs_kucnet: 1, epochs_baseline: 1, ..HarnessOpts::default() };
        let stats = fit_and_eval_folds(ModelKind::Ppr, &data, 2, &opts, |fold| {
            kucnet_datasets::new_item_split(&data, fold, 5, 1)
        });
        assert!(stats.recall_mean >= 0.0 && stats.recall_mean <= 1.0);
    }

    #[test]
    fn git_commit_is_a_short_hash_or_unknown() {
        let c = git_commit();
        assert!(
            c == "unknown" || (c.len() >= 7 && c.chars().all(|ch| ch.is_ascii_hexdigit())),
            "unexpected commit stamp: {c}"
        );
    }

    #[test]
    fn lineups_match_paper_row_counts() {
        assert_eq!(ModelKind::table3_lineup().len(), 11);
        assert_eq!(ModelKind::table4_lineup().len(), 14);
    }
}
