//! Hot-swap chaos suite: model reloads landing mid-burst, under fault
//! injection, must never drop a request or blur attribution.
//!
//! The contract under test (DESIGN.md §15):
//!
//! - a swap is **zero-downtime**: every request issued across the flip
//!   completes with 200 or 500 before `reply_timeout` — none are dropped;
//! - every 200 is **attributable to exactly one model generation**: the
//!   response's `model_version` names it, and the ranking bitwise-matches
//!   what that generation scores offline — never a blend of old and new;
//! - requests submitted after `reload` returns are served by the new
//!   version, old-pinned batches drain on the old one;
//! - the worker pool heals from injected panics across the swap, and the
//!   cache invariant `hits + misses == lookups` survives the version flip
//!   (model-version stamps make old entries lazily stale, never wrong).

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use kucnet::{KucNet, KucNetConfig, ScoreService};
use kucnet_datasets::{DatasetProfile, GeneratedDataset};
use kucnet_eval::top_n_indices;
use kucnet_graph::{Ckg, LayeredGraph, NodeId, UserId};
use kucnet_serve::{
    FaultConfig, FaultyService, ModelLoader, ModelRegistry, ServeConfig, Server, ServerHandle,
};

const N_USERS: usize = 256;
const N_ITEMS: usize = 32;

/// A parsed HTTP response: status code and body.
struct Response {
    status: u16,
    body: String,
}

/// Sends one raw HTTP request and reads the full response.
fn send(addr: std::net::SocketAddr, raw: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut reader = BufReader::new(stream);
    let mut text = String::new();
    reader.read_to_string(&mut text).expect("read response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {text}"));
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Response { status, body }
}

/// POSTs a JSON body to `path` and returns the parsed response.
fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> Response {
    let raw =
        format!("POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}", body.len());
    send(addr, &raw)
}

/// POSTs `/recommend` for `user` and returns the parsed response.
fn recommend(addr: std::net::SocketAddr, user: u64, top_k: u64) -> Response {
    post(addr, "/recommend", &format!("{{\"user\": {user}, \"top_k\": {top_k}}}"))
}

/// Pulls one `name value` metric line out of a `/metrics` body.
fn metric(body: &str, name: &str) -> f64 {
    body.lines()
        .find_map(|line| line.strip_prefix(name).map(|rest| rest.trim()))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric `{name}` missing in:\n{body}"))
}

/// Extracts the `"model_version":N` attribution from a success body.
fn model_version_of(body: &str) -> u64 {
    let rest = body
        .split_once("\"model_version\":")
        .unwrap_or_else(|| panic!("no model_version in: {body}"))
        .1;
    rest.chars().take_while(char::is_ascii_digit).collect::<String>().parse().expect("version")
}

/// Extracts the ranked item ids (in order) from a success body.
fn items_of(body: &str) -> Vec<u32> {
    let rest = body.split_once("\"items\":[").unwrap_or_else(|| panic!("no items in: {body}")).1;
    rest.split("\"item\":")
        .skip(1)
        .map(|chunk| {
            chunk.chars().take_while(char::is_ascii_digit).collect::<String>().parse().expect("id")
        })
        .collect()
}

/// A fast deterministic model stub: generation `tag` scores item `i` for
/// user `u` as `(u*31 + i*17 + tag*41) % 97`, so every generation ranks
/// differently and a served ranking pins down which generation produced it.
struct StubService {
    tag: usize,
}

impl ScoreService for StubService {
    fn name(&self) -> String {
        format!("stub{}", self.tag)
    }

    fn n_users(&self) -> usize {
        N_USERS
    }

    fn n_items(&self) -> usize {
        N_ITEMS
    }

    fn build_user_graph(&self, user: UserId) -> Arc<LayeredGraph> {
        Arc::new(LayeredGraph {
            root: NodeId(user.0),
            node_lists: vec![vec![NodeId(user.0)]],
            layers: vec![],
        })
    }

    fn score_graph(&self, graph: &LayeredGraph) -> Vec<f32> {
        let u = graph.root.0 as usize;
        (0..N_ITEMS).map(|i| ((u * 31 + i * 17 + self.tag * 41) % 97) as f32).collect()
    }
}

/// The ranking generation `tag` produces offline for `user` — ground truth
/// for response attribution (same scores, same `top_n_indices` tie-breaks
/// as the serving path).
fn expected_ranking(tag: usize, user: u64, k: usize) -> Vec<u32> {
    let u = user as usize;
    let scores: Vec<f32> =
        (0..N_ITEMS).map(|i| ((u * 31 + i * 17 + tag * 41) % 97) as f32).collect();
    top_n_indices(&scores, k).into_iter().map(|i| u32::try_from(i).expect("item id")).collect()
}

/// Polls until the worker pool is back at `want` workers with at least one
/// respawn recorded, or fails after `deadline`.
fn wait_for_heal(handle: &ServerHandle, want: u64, deadline: Duration) {
    let end = Instant::now() + deadline;
    loop {
        let stats = handle.batcher_stats();
        if stats.workers_alive == want && stats.workers_respawned >= 1 {
            return;
        }
        assert!(Instant::now() < end, "pool never healed to {want}: {stats:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Retries `recommend` until a 200 lands (fault injection may eat a few),
/// returning the success body.
fn recommend_until_200(addr: std::net::SocketAddr, user: u64, top_k: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = recommend(addr, user, top_k);
        if resp.status == 200 {
            return resp.body;
        }
        assert_eq!(resp.status, 500, "only injected 500s allowed: {}", resp.body);
        assert!(Instant::now() < deadline, "no 200 for user {user} before deadline");
    }
}

#[test]
fn hot_swap_mid_burst_under_panics_is_zero_downtime_and_attributable() {
    // The acceptance scenario: a 100-request burst under 20% injected build
    // panics, with a model hot-swap landing mid-burst. Every request must
    // complete (200 or 500, never dropped), every 200 must carry a model
    // version whose offline ranking matches the served one exactly, both
    // the old and the new version must serve at least one request, the
    // pool must heal, and the cache ledger must balance across the flip.
    let top_k = 5u64;
    let reply_timeout = Duration::from_secs(10);
    let config = ServeConfig {
        workers: 3,
        max_batch: 8,
        flush_deadline: Duration::from_millis(1),
        cache_capacity: 8, // smaller than the user spread: builds keep happening
        reply_timeout,
        ..ServeConfig::default()
    };
    let old: Arc<dyn ScoreService> = Arc::new(FaultyService::new(
        Arc::new(StubService { tag: 0 }),
        FaultConfig { seed: 7, panic_rate: 0.2, ..FaultConfig::default() },
    ));
    let registry = Arc::new(ModelRegistry::single(old, config.ab_seed));
    let handle =
        Server::start_full(registry, None, None, config, "127.0.0.1:0").expect("bind server");
    let addr = handle.addr();

    // Deterministic pre-swap traffic: at least one request is served by v1.
    let pre = recommend_until_200(addr, 200, top_k);
    assert_eq!(model_version_of(&pre), 1, "pre-swap traffic must be on v1: {pre}");
    assert_eq!(items_of(&pre), expected_ranking(0, 200, top_k as usize), "{pre}");

    // The burst: 100 concurrent clients racing the swap.
    let clients: Vec<_> = (0..100u64)
        .map(|i| {
            std::thread::spawn(move || {
                let started = Instant::now();
                let resp = recommend(addr, i % 100, top_k);
                (i, resp, started.elapsed())
            })
        })
        .collect();
    // Land the swap mid-burst (in-process, like an operator sidecar would).
    std::thread::sleep(Duration::from_millis(5));
    let new: Arc<dyn ScoreService> = Arc::new(StubService { tag: 1 });
    let v2 = handle.registry().reload("default", new).expect("hot swap");
    assert_eq!(v2, 2);

    let mut served = [0u32; 2]; // per-version 200 counts (v1, v2)
    let mut failed = 0u32;
    for client in clients {
        let (i, resp, elapsed) = client.join().expect("client must not hang");
        assert!(
            elapsed < reply_timeout + Duration::from_secs(5),
            "request {i} took {elapsed:?}: client effectively hung"
        );
        match resp.status {
            200 => {
                let version = model_version_of(&resp.body);
                assert!(version == 1 || version == 2, "request {i}: bad version: {}", resp.body);
                // Attribution is exact: the served ranking must be the one
                // the claimed generation computes offline. A cross-version
                // blend (old scores labeled v2 or vice versa) fails here.
                let tag = (version - 1) as usize;
                assert_eq!(
                    items_of(&resp.body),
                    expected_ranking(tag, i % 100, top_k as usize),
                    "request {i} (v{version}): ranking does not match its label: {}",
                    resp.body
                );
                served[tag] += 1;
            }
            500 => {
                failed += 1;
                assert!(resp.body.contains("injected panic"), "request {i}: {}", resp.body);
            }
            other => panic!("request {i}: unexpected status {other}: {}", resp.body),
        }
    }
    assert!(served[0] + served[1] > 0, "some requests must survive a 20% fault rate");
    assert!(failed > 0, "a 20% fault rate over 100 builds must hit something");
    assert!(served[1] > 0, "the new version must serve during/after the swap window");

    // Post-swap traffic is exclusively v2: reload returned before these
    // submissions, so no batch containing them can still be pinned to v1.
    for user in [201u64, 202, 203] {
        let body = recommend_until_200(addr, user, top_k);
        assert_eq!(model_version_of(&body), 2, "post-swap request leaked to v1: {body}");
        assert_eq!(items_of(&body), expected_ranking(1, user, top_k as usize), "{body}");
    }

    wait_for_heal(&handle, 3, Duration::from_secs(10));

    // The swap and per-variant attribution are visible in /metrics.
    let metrics = send(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(metrics.status, 200);
    assert_eq!(metric(&metrics.body, "kucnet_model_swaps_total"), 1.0, "{}", metrics.body);
    assert_eq!(metric(&metrics.body, "kucnet_variant_default_model_version"), 2.0);
    assert!(
        metric(&metrics.body, "kucnet_variant_default_requests")
            >= f64::from(served[0] + served[1])
    );
    assert!(metric(&metrics.body, "kucnet_workers_respawned") > 0.0, "{}", metrics.body);

    // The cache ledger balances across the version flip: old-version
    // entries went stale (invalidations), none were served wrongly, and
    // every lookup resolved as exactly one hit or one miss.
    let cache = handle.cache_stats();
    assert_eq!(
        cache.hits + cache.misses,
        cache.lookups,
        "every lookup is exactly one hit or one miss across the swap: {cache:?}"
    );

    // Without a loader configured, HTTP reloads are refused (in-process
    // reloads through the handle keep working, as used above).
    let resp = post(addr, "/admin/reload", "{\"variant\": \"default\", \"path\": \"/nope\"}");
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("no checkpoint loader"), "{}", resp.body);

    handle.shutdown();
}

/// Builds a replacement `KucNet` from a `KUCP` checkpoint — the concrete
/// [`ModelLoader`] a real deployment wires in.
struct KucpLoader {
    config: KucNetConfig,
    ckg: Ckg,
}

impl ModelLoader for KucpLoader {
    fn load(&self, _variant: &str, path: &str) -> Result<Arc<dyn ScoreService>, String> {
        let mut model = KucNet::new(self.config.clone(), self.ckg.clone());
        model.load_params(path).map_err(|e| format!("checkpoint load failed: {e}"))?;
        Ok(Arc::new(model))
    }
}

#[test]
fn http_reload_from_checkpoint_swaps_to_the_restored_model() {
    // End-to-end over the wire: train two generations of a real model,
    // serve generation A, `POST /admin/reload` generation B's checkpoint,
    // and verify served rankings flip to exactly what B scores offline.
    let data = GeneratedDataset::generate(&DatasetProfile::tiny(), 42);
    let ckg = data.build_ckg(&data.interactions);
    let config = KucNetConfig::default().with_epochs(1);

    let mut gen_a = KucNet::new(config.clone(), ckg.clone());
    gen_a.fit();
    let mut gen_b = KucNet::new(config.clone().with_epochs(3), ckg.clone());
    gen_b.fit();

    let ckpt = std::env::temp_dir().join(format!("kucnet_swap_{}.kucp", std::process::id()));
    gen_b.save_params(&ckpt).expect("save checkpoint");

    let top_k = 5;
    let user = 0u64;
    let expected_b: Vec<u32> = {
        let scores = gen_b.score_user(UserId(0));
        top_n_indices(&scores, top_k).into_iter().map(|i| u32::try_from(i).unwrap()).collect()
    };
    let expected_a: Vec<u32> = {
        let scores = gen_a.score_user(UserId(0));
        top_n_indices(&scores, top_k).into_iter().map(|i| u32::try_from(i).unwrap()).collect()
    };

    let loader = Arc::new(KucpLoader { config: config.clone().with_epochs(3), ckg: ckg.clone() });
    let serve_config = ServeConfig::default();
    let mut registry = ModelRegistry::new(serve_config.ab_seed);
    registry.register("default", 100, Arc::new(gen_a)).expect("register");
    let handle =
        Server::start_full(Arc::new(registry), Some(loader), None, serve_config, "127.0.0.1:0")
            .expect("bind server");
    let addr = handle.addr();

    // Generation A serves first.
    let before = recommend(addr, user, top_k as u64);
    assert_eq!(before.status, 200, "{}", before.body);
    assert_eq!(model_version_of(&before.body), 1);
    assert_eq!(items_of(&before.body), expected_a, "{}", before.body);

    // Bad reloads are 400s and leave the live model untouched.
    let bad = post(addr, "/admin/reload", "{\"variant\": \"nope\", \"path\": \"/x\"}");
    assert_eq!(bad.status, 400, "{}", bad.body);
    let bad =
        post(addr, "/admin/reload", "{\"variant\": \"default\", \"path\": \"/does/not/exist\"}");
    assert_eq!(bad.status, 400, "{}", bad.body);
    assert_eq!(model_version_of(&recommend(addr, user, top_k as u64).body), 1);

    // The real reload, over HTTP, from the checkpoint file.
    let ckpt_json = ckpt.to_str().expect("utf-8 temp path").replace('\\', "\\\\");
    let resp = post(
        addr,
        "/admin/reload",
        &format!("{{\"variant\": \"default\", \"path\": \"{ckpt_json}\"}}"),
    );
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"model_version\":2"), "{}", resp.body);

    // Served rankings are now generation B's, attributed to version 2.
    let after = recommend(addr, user, top_k as u64);
    assert_eq!(after.status, 200, "{}", after.body);
    assert_eq!(model_version_of(&after.body), 2);
    assert_eq!(items_of(&after.body), expected_b, "restored model must serve B's rankings");

    handle.shutdown();
    let _ = std::fs::remove_file(&ckpt);
}
