//! A/B routing differential suite: variant assignment must be a pure
//! function of `(ab_seed, user id, weights)` — bitwise-stable across
//! `batch_threads` settings and server restarts — and realized traffic
//! splits must track the configured weights.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use kucnet::ScoreService;
use kucnet_graph::{LayeredGraph, NodeId, UserId};
use kucnet_serve::{route_variant, ModelRegistry, ServeConfig, Server};

const N_USERS: usize = 256;
const N_ITEMS: usize = 16;

/// A parsed HTTP response: status code and body.
struct Response {
    status: u16,
    body: String,
}

/// Sends one raw HTTP request and reads the full response.
fn send(addr: std::net::SocketAddr, raw: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut reader = BufReader::new(stream);
    let mut text = String::new();
    reader.read_to_string(&mut text).expect("read response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {text}"));
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Response { status, body }
}

/// POSTs a JSON body to `path` and returns the parsed response.
fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> Response {
    let raw =
        format!("POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}", body.len());
    send(addr, &raw)
}

/// Extracts the `"variant":"name"` attribution from a success body.
fn variant_of(body: &str) -> String {
    body.split_once("\"variant\":\"")
        .unwrap_or_else(|| panic!("no variant in: {body}"))
        .1
        .split_once('"')
        .expect("unterminated variant")
        .0
        .to_string()
}

/// A trivial deterministic model stub tagged per variant.
struct StubService {
    tag: usize,
}

impl ScoreService for StubService {
    fn name(&self) -> String {
        format!("stub{}", self.tag)
    }

    fn n_users(&self) -> usize {
        N_USERS
    }

    fn n_items(&self) -> usize {
        N_ITEMS
    }

    fn build_user_graph(&self, user: UserId) -> Arc<LayeredGraph> {
        Arc::new(LayeredGraph {
            root: NodeId(user.0),
            node_lists: vec![vec![NodeId(user.0)]],
            layers: vec![],
        })
    }

    fn score_graph(&self, graph: &LayeredGraph) -> Vec<f32> {
        let u = graph.root.0 as usize;
        (0..N_ITEMS).map(|i| ((u * 13 + i * 7 + self.tag * 29) % 53) as f32).collect()
    }
}

/// Builds a two-variant registry (`control`, `treatment`) with the given
/// weights and A/B seed.
fn two_variant_registry(seed: u64, w_control: u64, w_treatment: u64) -> Arc<ModelRegistry> {
    let mut registry = ModelRegistry::new(seed);
    registry.register("control", w_control, Arc::new(StubService { tag: 0 })).expect("control");
    registry
        .register("treatment", w_treatment, Arc::new(StubService { tag: 1 }))
        .expect("treatment");
    Arc::new(registry)
}

#[test]
fn pure_routing_splits_track_weights_across_seeds() {
    // The routing function itself, no server: for each (seed, weights)
    // cell the realized split over 1000 users must sit inside a generous
    // tolerance band, and degenerate weights must be exact.
    const N: u64 = 1000;
    for seed in [1u64, 7, 42] {
        // 0/100: every user goes to the second variant, no exceptions.
        for user in 0..N {
            assert_eq!(route_variant(seed, user as u32, &[0, 100]), 1, "seed {seed} user {user}");
            assert_eq!(route_variant(seed, user as u32, &[100, 0]), 0, "seed {seed} user {user}");
        }
        // 50/50: split within ±10 points of even.
        let to_first = (0..N).filter(|&u| route_variant(seed, u as u32, &[50, 50]) == 0).count();
        assert!((400..=600).contains(&to_first), "seed {seed}: 50/50 split {to_first}/1000");
        // 90/10: minority variant gets its slice, within ±6 points.
        let to_second = (0..N).filter(|&u| route_variant(seed, u as u32, &[90, 10]) == 1).count();
        assert!((40..=160).contains(&to_second), "seed {seed}: 90/10 split {to_second}/1000");
    }
    // Different seeds bucket differently (re-seeding reshuffles cohorts).
    let a: Vec<usize> = (0..64).map(|u| route_variant(1, u, &[50, 50])).collect();
    let b: Vec<usize> = (0..64).map(|u| route_variant(2, u, &[50, 50])).collect();
    assert_ne!(a, b, "distinct seeds must not produce identical assignments");
}

#[test]
fn served_assignment_is_stable_across_batch_threads_and_restarts() {
    // The served `variant` label must equal the pure-function prediction
    // for every user, at batch_threads = 1 and at batch_threads = 8 on a
    // freshly restarted server — assignment is a deployment invariant, not
    // an artifact of scheduling.
    let ab_seed = 0xAB_5EED;
    let weights = [50u64, 50];
    let names = ["control", "treatment"];
    let predicted: Vec<&str> =
        (0..64u32).map(|u| names[route_variant(ab_seed, u, &weights)]).collect();
    assert!(predicted.iter().any(|&v| v == "control"), "degenerate shuffle");
    assert!(predicted.iter().any(|&v| v == "treatment"), "degenerate shuffle");

    let mut observed: Vec<Vec<String>> = Vec::new();
    for batch_threads in [1usize, 8] {
        let config = ServeConfig { batch_threads, ab_seed, ..ServeConfig::default() };
        let handle = Server::start_full(
            two_variant_registry(ab_seed, weights[0], weights[1]),
            None,
            None,
            config,
            "127.0.0.1:0",
        )
        .expect("bind server");
        let addr = handle.addr();
        let assignments: Vec<String> = (0..64u64)
            .map(|user| {
                let resp = post(addr, "/recommend", &format!("{{\"user\": {user}, \"top_k\": 3}}"));
                assert_eq!(resp.status, 200, "{}", resp.body);
                variant_of(&resp.body)
            })
            .collect();
        assert_eq!(
            assignments, predicted,
            "served assignment diverged from route_variant at batch_threads={batch_threads}"
        );
        observed.push(assignments);
        handle.shutdown();
    }
    assert_eq!(observed[0], observed[1], "assignment changed across restart/thread count");
}

#[test]
fn admin_ab_rebalances_routing_and_metrics_report_weights() {
    // Weight changes through POST /admin/ab take effect for subsequent
    // requests, are visible in /metrics, and malformed bodies are refused
    // without disturbing the live weights.
    let ab_seed = 0xAB_5EED;
    let config = ServeConfig { ab_seed, ..ServeConfig::default() };
    let handle = Server::start_full(
        two_variant_registry(ab_seed, 50, 50),
        None,
        None,
        config,
        "127.0.0.1:0",
    )
    .expect("bind server");
    let addr = handle.addr();

    // Flip all traffic to treatment.
    let resp = post(addr, "/admin/ab", "{\"control\": 0, \"treatment\": 100}");
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"control\":0"), "{}", resp.body);
    assert!(resp.body.contains("\"treatment\":100"), "{}", resp.body);
    for user in 0..32u64 {
        let resp = post(addr, "/recommend", &format!("{{\"user\": {user}, \"top_k\": 3}}"));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(variant_of(&resp.body), "treatment", "user {user}: {}", resp.body);
    }

    // Invalid updates are 400s and leave weights untouched.
    for bad in ["{}", "{\"nope\": 10}", "not json"] {
        let resp = post(addr, "/admin/ab", bad);
        assert_eq!(resp.status, 400, "body {bad:?}: {}", resp.body);
    }

    let metrics = send(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(metrics.status, 200);
    for line in [
        "kucnet_variant_control_weight 0",
        "kucnet_variant_treatment_weight 100",
        "kucnet_variants 2",
    ] {
        assert!(
            metrics.body.lines().any(|l| l.trim() == line),
            "missing `{line}` in:\n{}",
            metrics.body
        );
    }
    // Treatment absorbed the post-rebalance traffic.
    let treated: f64 = metrics
        .body
        .lines()
        .find_map(|l| l.strip_prefix("kucnet_variant_treatment_requests").map(str::trim))
        .and_then(|v| v.parse().ok())
        .expect("treatment request counter");
    assert!(treated >= 32.0, "expected ≥32 treatment requests:\n{}", metrics.body);

    handle.shutdown();
}
