//! End-to-end test: a real `kucnet-serve` server on an ephemeral port,
//! concurrent HTTP clients, and rank parity against offline scoring.
//!
//! The parity claim is exact, not approximate: the server and the offline
//! path share `KucNet::score_graph` (the tape-free forward) and
//! `kucnet_eval::top_n_indices`, so the served ranking must match the
//! offline ranking item-for-item and score-for-score.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use kucnet::{KucNet, KucNetConfig, ScoreService};
use kucnet_datasets::{DatasetProfile, GeneratedDataset};
use kucnet_eval::top_n_indices;
use kucnet_serve::{ServeConfig, Server, ServerHandle};

/// A parsed HTTP response: status code and body.
struct Response {
    status: u16,
    body: String,
}

/// Sends one raw HTTP request and reads the full response.
fn send(addr: std::net::SocketAddr, raw: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut reader = BufReader::new(stream);
    let mut text = String::new();
    reader.read_to_string(&mut text).expect("read response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {text}"));
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Response { status, body }
}

/// POSTs `/recommend` for `user` and returns the parsed response.
fn recommend(addr: std::net::SocketAddr, user: u64, top_k: u64) -> Response {
    let body = format!("{{\"user\": {user}, \"top_k\": {top_k}}}");
    let raw = format!(
        "POST /recommend HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    send(addr, &raw)
}

/// Extracts the `(item, score)` list out of a `/recommend` success body.
fn parse_items(body: &str) -> Vec<(u32, f32)> {
    let inner = body
        .split_once("\"items\":[")
        .map(|(_, rest)| rest)
        .and_then(|rest| rest.rsplit_once("]}"))
        .map(|(items, _)| items)
        .unwrap_or_else(|| panic!("no items array in: {body}"));
    if inner.is_empty() {
        return Vec::new();
    }
    inner
        .split("},{")
        .map(|entry| {
            let entry = entry.trim_matches(|c| c == '{' || c == '}');
            let mut item = None;
            let mut score = None;
            for field in entry.split(',') {
                let (key, value) = field.split_once(':').expect("field");
                match key.trim_matches('"') {
                    "item" => item = value.parse::<u32>().ok(),
                    "score" => score = value.parse::<f32>().ok(),
                    other => panic!("unexpected field `{other}` in: {body}"),
                }
            }
            (item.expect("item id"), score.expect("score"))
        })
        .collect()
}

/// Pulls one `name value` metric line out of a `/metrics` body.
fn metric(body: &str, name: &str) -> f64 {
    body.lines()
        .find_map(|line| line.strip_prefix(name).map(|rest| rest.trim()))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric `{name}` missing in:\n{body}"))
}

/// Trains a small model and starts a server over it.
fn start_test_server() -> (Arc<KucNet>, ServerHandle) {
    let data = GeneratedDataset::generate(&DatasetProfile::tiny(), 7);
    let ckg = data.build_ckg(&data.interactions);
    let mut model = KucNet::new(KucNetConfig::default().with_epochs(2), ckg);
    model.fit();
    let model = Arc::new(model);
    let service: Arc<dyn ScoreService> = Arc::clone(&model) as Arc<dyn ScoreService>;
    // Capacity exceeds the tiny profile's user count, so once a user's
    // subgraph is resident it can never be evicted — repeat requests are
    // deterministic cache hits even under concurrent thrash.
    let config = ServeConfig {
        cache_capacity: 256,
        max_batch: 4,
        flush_deadline: std::time::Duration::from_millis(2),
        workers: 2,
        ..ServeConfig::default()
    };
    let handle = Server::start(service, config, "127.0.0.1:0").expect("bind ephemeral port");
    (model, handle)
}

#[test]
fn served_rankings_match_offline_eval_exactly() {
    let (model, handle) = start_test_server();
    let addr = handle.addr();
    let top_k = 5usize;

    // Offline reference rankings through the same scoring path the
    // evaluator uses.
    let offline: Vec<Vec<(u32, f32)>> = (0..model.n_users())
        .map(|u| {
            let scores = model.score_user(kucnet_graph::UserId(u as u32));
            top_n_indices(&scores, top_k).into_iter().map(|i| (i as u32, scores[i])).collect()
        })
        .collect();

    // Concurrent clients: every user twice (second pass drives cache hits).
    let mut join = Vec::new();
    for pass in 0..2 {
        for user in 0..model.n_users() as u64 {
            let expected = offline[user as usize].clone();
            join.push(std::thread::spawn(move || {
                let resp = recommend(addr, user, top_k as u64);
                assert_eq!(resp.status, 200, "user {user} pass {pass}: {}", resp.body);
                let got = parse_items(&resp.body);
                assert_eq!(got, expected, "rank mismatch for user {user}");
            }));
        }
    }
    for handle in join {
        handle.join().expect("client thread");
    }

    // Sequential repeats after the storm: user 0 is resident (the cache
    // never evicts in this test), so these are guaranteed hits.
    for _ in 0..3 {
        assert_eq!(recommend(addr, 0, top_k as u64).status, 200);
    }

    // Repeat requests for the same user must have hit the subgraph cache.
    let metrics = send(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(metrics.status, 200);
    assert!(metric(&metrics.body, "kucnet_cache_hit_rate") > 0.0, "{}", metrics.body);
    assert!(metric(&metrics.body, "kucnet_requests_total") >= (2 * model.n_users()) as f64);
    assert!(metric(&metrics.body, "kucnet_latency_p50_us") > 0.0);

    handle.shutdown();
}

#[test]
fn invalid_requests_get_4xx_not_panics() {
    let (model, handle) = start_test_server();
    let addr = handle.addr();

    // Unknown user id: 404.
    let resp = recommend(addr, model.n_users() as u64 + 10, 3);
    assert_eq!(resp.status, 404, "{}", resp.body);

    // top_k out of range: 400.
    assert_eq!(recommend(addr, 0, 0).status, 400);
    assert_eq!(recommend(addr, 0, 1_000_000).status, 400);

    // Malformed JSON bodies: 400.
    for body in ["not json", "{\"user\": \"x\"}", "{\"user\": 1, \"bogus\": 2}", "[1]"] {
        let raw = format!(
            "POST /recommend HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        assert_eq!(send(addr, &raw).status, 400, "body `{body}` must be rejected");
    }

    // Missing route and wrong method.
    assert_eq!(send(addr, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n").status, 404);
    assert_eq!(send(addr, "GET /recommend HTTP/1.1\r\nHost: t\r\n\r\n").status, 405);

    // The server still works after all that abuse.
    assert_eq!(recommend(addr, 0, 3).status, 200);
    assert_eq!(send(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").status, 200);

    handle.shutdown();
}

#[test]
fn serving_a_checkpoint_restored_model_matches_the_original() {
    // Train, freeze to a KUCP checkpoint, restore into a fresh model over
    // the same CKG, and serve the restored model: rankings must equal the
    // original model's offline rankings exactly.
    let data = GeneratedDataset::generate(&DatasetProfile::tiny(), 7);
    let ckg = data.build_ckg(&data.interactions);
    let config = KucNetConfig::default().with_epochs(2);
    let mut trained = KucNet::new(config.clone(), ckg.clone());
    trained.fit();

    let path = std::env::temp_dir().join(format!("kucnet_serve_e2e_{}.kucp", std::process::id()));
    trained.save_params(&path).expect("save checkpoint");
    let mut restored = KucNet::new(config, ckg);
    restored.load_params(&path).expect("load checkpoint");
    let _ = std::fs::remove_file(&path);

    let top_k = 5usize;
    let offline: Vec<(u32, f32)> = {
        let scores = trained.score_user(kucnet_graph::UserId(3));
        top_n_indices(&scores, top_k).into_iter().map(|i| (i as u32, scores[i])).collect()
    };

    let service: Arc<dyn ScoreService> = Arc::new(restored);
    let handle =
        Server::start(service, ServeConfig::default(), "127.0.0.1:0").expect("bind server");
    let resp = recommend(handle.addr(), 3, top_k as u64);
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(parse_items(&resp.body), offline, "restored model must serve identical rankings");
    handle.shutdown();
}

#[test]
fn shutdown_is_graceful_and_idempotent() {
    let (_, handle) = start_test_server();
    let addr = handle.addr();
    assert_eq!(recommend(addr, 0, 2).status, 200);
    handle.shutdown();
    handle.shutdown(); // second call must be a no-op
    assert!(
        TcpStream::connect(addr).is_err() || {
            // The OS may briefly accept on a dying listener; a request must
            // at least not hang or return a ranking.
            true
        }
    );
}
