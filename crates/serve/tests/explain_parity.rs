//! Live `/explain` parity suite: the DOT and text explanations served over
//! HTTP must be **byte-identical** to the offline fig7-style extraction
//! (`kucnet::explain(...).to_dot(...)`) for pinned `(user, item)` pairs —
//! at `batch_threads = 1` and `batch_threads = 8` alike. Explanations are
//! an audit artifact; any drift between the paper-figure path and the live
//! endpoint would make served explanations unciteable.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use kucnet::{explain, KucNet, KucNetConfig, ScoreService};
use kucnet_datasets::{DatasetProfile, GeneratedDataset};
use kucnet_graph::{ItemId, UserId};
use kucnet_serve::{ServeConfig, Server};

/// A parsed HTTP response: status code and body.
struct Response {
    status: u16,
    body: String,
}

/// Sends one raw HTTP request and reads the full response.
fn send(addr: std::net::SocketAddr, raw: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut reader = BufReader::new(stream);
    let mut text = String::new();
    reader.read_to_string(&mut text).expect("read response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {text}"));
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Response { status, body }
}

/// POSTs a JSON body to `path` and returns the parsed response.
fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> Response {
    let raw =
        format!("POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}", body.len());
    send(addr, &raw)
}

/// Extracts and JSON-unescapes the string field `key` from a flat JSON
/// body (inverse of the server's `json_escape`).
fn json_str_field(body: &str, key: &str) -> String {
    let needle = format!("\"{key}\":\"");
    let rest = body.split_once(&needle).unwrap_or_else(|| panic!("no `{key}` field in: {body}")).1;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return out,
            '\\' => match chars.next().expect("dangling escape") {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (0..4).map(|_| chars.next().expect("short \\u")).collect();
                    let code = u32::from_str_radix(&hex, 16).expect("hex escape");
                    out.push(char::from_u32(code).expect("valid code point"));
                }
                other => panic!("unexpected escape \\{other} in `{key}`"),
            },
            c => out.push(c),
        }
    }
    panic!("unterminated `{key}` string in: {body}")
}

/// Extracts a bare numeric field from a flat JSON body.
fn json_u64_field(body: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    body.split_once(&needle)
        .unwrap_or_else(|| panic!("no `{key}` field in: {body}"))
        .1
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric field")
}

/// Trains the pinned tiny model and picks the 5 pinned `(user, item)`
/// pairs: the first 5 users with at least one interaction, paired with
/// their first interacted item.
fn trained_model_and_pairs() -> (KucNet, Vec<(UserId, ItemId)>) {
    let data = GeneratedDataset::generate(&DatasetProfile::tiny(), 42);
    let ckg = data.build_ckg(&data.interactions);
    let mut model = KucNet::new(KucNetConfig::default().with_epochs(2), ckg);
    model.fit();

    let mut pairs: Vec<(UserId, ItemId)> = Vec::new();
    let mut next_user = 0u32;
    for &(user, item) in &data.interactions {
        if user.0 == next_user {
            pairs.push((user, item));
            next_user += 1;
            if pairs.len() == 5 {
                break;
            }
        }
    }
    assert_eq!(pairs.len(), 5, "tiny profile must yield 5 pinned pairs");
    (model, pairs)
}

#[test]
fn live_explain_is_byte_identical_to_offline_dot_extraction() {
    // threshold_milli 200 mirrors the fig7 fallback threshold of 0.2.
    const THRESHOLD_MILLI: u16 = 200;
    let threshold = f32::from(THRESHOLD_MILLI) / 1000.0;

    let (model, pairs) = trained_model_and_pairs();
    // Offline references, straight from the paper-figure extraction path.
    let offline: Vec<(String, String, usize)> = pairs
        .iter()
        .map(|&(user, item)| {
            let explanation = explain(&model, user, item, threshold);
            let ckg = model.ckg();
            (explanation.to_dot(ckg), explanation.to_text(ckg), explanation.edges.len())
        })
        .collect();
    assert!(
        offline.iter().any(|(_, _, n)| *n > 0),
        "pinned pairs must produce at least one non-empty explanation"
    );

    let service: Arc<dyn ScoreService> = Arc::new(model);
    for batch_threads in [1usize, 8] {
        let config = ServeConfig { batch_threads, ..ServeConfig::default() };
        let handle =
            Server::start(Arc::clone(&service), config, "127.0.0.1:0").expect("bind server");
        let addr = handle.addr();

        for (&(user, item), (dot, text, n_edges)) in pairs.iter().zip(&offline) {
            let resp = post(
                addr,
                "/explain",
                &format!(
                    "{{\"user\": {}, \"item\": {}, \"threshold_milli\": {THRESHOLD_MILLI}}}",
                    user.0, item.0
                ),
            );
            assert_eq!(resp.status, 200, "{}", resp.body);
            assert_eq!(
                json_str_field(&resp.body, "dot"),
                *dot,
                "DOT drifted from offline extraction for (user {}, item {}) at \
                 batch_threads={batch_threads}",
                user.0,
                item.0
            );
            assert_eq!(
                json_str_field(&resp.body, "text"),
                *text,
                "text drifted for (user {}, item {})",
                user.0,
                item.0
            );
            assert_eq!(json_u64_field(&resp.body, "n_edges"), *n_edges as u64);
            assert_eq!(json_u64_field(&resp.body, "model_version"), 1);
            assert_eq!(json_u64_field(&resp.body, "threshold_milli"), u64::from(THRESHOLD_MILLI));
        }
        handle.shutdown();
    }
}

#[test]
fn explain_validates_inputs_and_default_threshold() {
    let (model, pairs) = trained_model_and_pairs();
    let default_threshold = 0.5; // server's DEFAULT_THRESHOLD_MILLI = 500
    let (user, item) = pairs[0];
    let expected = {
        let explanation = explain(&model, user, item, default_threshold);
        explanation.to_dot(model.ckg())
    };
    let n_users = model.n_users() as u64;
    let n_items = model.n_items() as u64;

    let service: Arc<dyn ScoreService> = Arc::new(model);
    let handle =
        Server::start(service, ServeConfig::default(), "127.0.0.1:0").expect("bind server");
    let addr = handle.addr();

    // Omitted threshold_milli falls back to 500 (= 0.5).
    let resp = post(addr, "/explain", &format!("{{\"user\": {}, \"item\": {}}}", user.0, item.0));
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(json_str_field(&resp.body, "dot"), expected);
    assert_eq!(json_u64_field(&resp.body, "threshold_milli"), 500);

    // Out-of-range user → 404; out-of-range item or threshold → 400.
    let resp = post(addr, "/explain", &format!("{{\"user\": {n_users}, \"item\": 0}}"));
    assert_eq!(resp.status, 404, "{}", resp.body);
    let resp = post(addr, "/explain", &format!("{{\"user\": 0, \"item\": {n_items}}}"));
    assert_eq!(resp.status, 400, "{}", resp.body);
    let resp = post(addr, "/explain", "{\"user\": 0, \"item\": 0, \"threshold_milli\": 1001}");
    assert_eq!(resp.status, 400, "{}", resp.body);

    handle.shutdown();
}
