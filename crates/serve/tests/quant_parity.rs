//! The quantized rank-parity gate (ISSUE 9, hard gate): on **all four**
//! paper dataset profiles, the i8 inference path must agree with the f32
//! path on at least 99% of the served top-N, averaged over a pinned user
//! sample. Runs on seeded (untrained) models — parity is a property of the
//! inference kernels, not of training — so the gate is fast enough for
//! `scripts/check.sh` while still covering the paper-profile graph shapes.
//!
//! A second test drives the precision knob end-to-end over HTTP: toggling
//! `POST /admin/ab {"quant.default": 1}` republishes the model under a new
//! version, serves quantized rankings live, and toggling back yields a
//! byte-identical f32 response (the master weights are never touched).

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use kucnet::{KucNet, KucNetConfig, ScoreService};
use kucnet_datasets::{DatasetProfile, GeneratedDataset};
use kucnet_eval::top_n_indices;
use kucnet_graph::UserId;
use kucnet_serve::{ServeConfig, Server};

/// Overlap size of the ranked prefix the gate compares (the harness
/// default recommendation depth).
const TOP_N: usize = 20;

/// Users sampled per profile; small enough to keep the gate fast in debug.
const SAMPLE_USERS: u32 = 64;

/// Fraction of the top-N that must agree, averaged over the sample.
const MIN_MEAN_OVERLAP: f64 = 0.99;

/// |top-N(a) ∩ top-N(b)| / N under the shared deterministic tie-break.
fn overlap_at_n(a: &[f32], b: &[f32], n: usize) -> f64 {
    let ta = top_n_indices(a, n);
    let tb = top_n_indices(b, n);
    let hits = ta.iter().filter(|i| tb.contains(i)).count();
    hits as f64 / ta.len().max(1) as f64
}

/// Builds the seeded, untrained model for one profile.
fn seeded_model(profile: &DatasetProfile) -> KucNet {
    let data = GeneratedDataset::generate(profile, 42);
    let ckg = data.build_ckg(&data.interactions);
    KucNet::new(KucNetConfig::default(), ckg)
}

#[test]
fn quantized_top_n_overlap_is_at_least_99_percent_on_all_four_profiles() {
    let profiles: [(&str, DatasetProfile); 4] = [
        ("lastfm-small", DatasetProfile::lastfm_small()),
        ("amazon-book-small", DatasetProfile::amazon_book_small()),
        ("ifashion-small", DatasetProfile::ifashion_small()),
        ("disgenet-small", DatasetProfile::disgenet_small()),
    ];
    let stash = kucnet_tensor::PoolStash::new();
    for (name, profile) in profiles {
        let model = seeded_model(&profile);
        assert!(model.supports_quantized(), "KucNet must expose the i8 path");
        assert!(model.prepare_quantized(), "quantizing the master weights must succeed");
        let mut pool = stash.checkout();
        let users = u32::try_from(model.n_users()).unwrap_or(u32::MAX).min(SAMPLE_USERS);
        let mut total = 0.0f64;
        let mut worst = 1.0f64;
        for u in 0..users {
            let graph = model.build_user_graph(UserId(u));
            let f32_scores = model.score_graph_pooled(&mut pool, &graph);
            let quant_scores = model.score_graph_quant_pooled(&mut pool, &graph);
            assert_eq!(f32_scores.len(), quant_scores.len(), "{name}: score spaces differ");
            let overlap = overlap_at_n(&f32_scores, &quant_scores, TOP_N);
            total += overlap;
            worst = worst.min(overlap);
        }
        let mean = total / f64::from(users);
        assert!(
            mean >= MIN_MEAN_OVERLAP,
            "{name}: mean top-{TOP_N} overlap {mean:.4} < {MIN_MEAN_OVERLAP} \
             (worst user {worst:.4}) — the quantized path drifted past the rank-parity gate"
        );
    }
}

#[test]
fn warm_state_resume_matches_the_full_pass_in_both_precisions() {
    // The layer-1 skip must not change rankings: scoring from a cached
    // `UserState` is bitwise-identical to the full pass in each precision.
    let model = seeded_model(&DatasetProfile::lastfm_small());
    assert!(model.prepare_quantized());
    let stash = kucnet_tensor::PoolStash::new();
    let mut pool = stash.checkout();
    for u in 0..16u32 {
        let graph = model.build_user_graph(UserId(u));
        for quantized in [false, true] {
            let full = if quantized {
                model.score_graph_quant_pooled(&mut pool, &graph)
            } else {
                model.score_graph_pooled(&mut pool, &graph)
            };
            let Some(state) = model.build_user_state(&mut pool, &graph, quantized) else {
                continue; // isolated user with no layers: nothing to resume
            };
            assert_eq!(state.quantized(), quantized);
            let resumed = model.score_graph_from_state(&mut pool, &graph, &state);
            assert_eq!(
                full.to_bits_vec(),
                resumed.to_bits_vec(),
                "user {u} quantized={quantized}: resume drifted from the full pass"
            );
        }
    }
}

/// Bitwise view of a score vector for exact comparison.
trait ToBits {
    fn to_bits_vec(&self) -> Vec<u32>;
}

impl ToBits for Vec<f32> {
    fn to_bits_vec(&self) -> Vec<u32> {
        self.iter().map(|v| v.to_bits()).collect()
    }
}

/// A parsed HTTP response: status code and body.
struct Response {
    status: u16,
    body: String,
}

/// Sends one raw HTTP request and reads the full response.
fn send(addr: std::net::SocketAddr, raw: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut reader = BufReader::new(stream);
    let mut text = String::new();
    reader.read_to_string(&mut text).expect("read response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {text}"));
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Response { status, body }
}

/// POSTs a JSON body to `path` and returns the parsed response.
fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> Response {
    let raw =
        format!("POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}", body.len());
    send(addr, &raw)
}

/// GETs `path` and returns the parsed response.
fn get(addr: std::net::SocketAddr, path: &str) -> Response {
    send(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

/// Extracts a bare numeric field from a flat JSON body.
fn json_u64_field(body: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    body.split_once(&needle)
        .unwrap_or_else(|| panic!("no `{key}` field in: {body}"))
        .1
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric field")
}

/// Item ids of a `/recommend` response body, in served order.
fn ranked_items(body: &str) -> Vec<u64> {
    body.split("\"item\":")
        .skip(1)
        .map(|rest| {
            rest.chars().take_while(char::is_ascii_digit).collect::<String>().parse().unwrap()
        })
        .collect()
}

#[test]
fn live_precision_toggle_bumps_version_and_restores_f32_bitwise() {
    let data = GeneratedDataset::generate(&DatasetProfile::tiny(), 42);
    let ckg = data.build_ckg(&data.interactions);
    let mut model = KucNet::new(KucNetConfig::default().with_epochs(2), ckg);
    model.fit();
    let service: Arc<dyn ScoreService> = Arc::new(model);
    let handle =
        Server::start(service, ServeConfig::default(), "127.0.0.1:0").expect("bind server");
    let addr = handle.addr();
    let req = "{\"user\": 1, \"top_k\": 10}";

    // Baseline f32 response on the freshly registered model (version 1).
    let f32_resp = post(addr, "/recommend", req);
    assert_eq!(f32_resp.status, 200, "{}", f32_resp.body);
    assert_eq!(json_u64_field(&f32_resp.body, "model_version"), 1);

    // Flip to quantized: a republish under version 2, visible in /metrics.
    let resp = post(addr, "/admin/ab", "{\"quant.default\": 1}");
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"quantized\":{\"default\":1}"), "{}", resp.body);
    let metrics = get(addr, "/metrics").body;
    assert!(metrics.contains("kucnet_variant_default_quantized 1"), "{metrics}");

    let quant_resp = post(addr, "/recommend", req);
    assert_eq!(quant_resp.status, 200, "{}", quant_resp.body);
    assert_eq!(json_u64_field(&quant_resp.body, "model_version"), 2);
    let f32_items = ranked_items(&f32_resp.body);
    let quant_items = ranked_items(&quant_resp.body);
    let hits = f32_items.iter().filter(|i| quant_items.contains(i)).count();
    assert!(
        hits * 10 >= f32_items.len() * 8,
        "live quantized ranking drifted too far: {f32_items:?} vs {quant_items:?}"
    );

    // Flip back: version 3, and the ranking is byte-identical to the f32
    // baseline — quantization never touches the master weights.
    let resp = post(addr, "/admin/ab", "{\"quant.default\": 0}");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let back_resp = post(addr, "/recommend", req);
    assert_eq!(json_u64_field(&back_resp.body, "model_version"), 3);
    assert_eq!(
        ranked_items(&back_resp.body),
        f32_items,
        "f32 path must be bitwise-unchanged after a quantized excursion"
    );
    let metrics = get(addr, "/metrics").body;
    assert!(metrics.contains("kucnet_variant_default_quantized 0"), "{metrics}");
    assert!(metrics.contains("kucnet_stage_warm_p50_us"), "{metrics}");

    // Unknown quant target and out-of-range value are rejected atomically.
    let resp = post(addr, "/admin/ab", "{\"quant.nope\": 1}");
    assert_eq!(resp.status, 400, "{}", resp.body);
    let resp = post(addr, "/admin/ab", "{\"quant.default\": 2}");
    assert_eq!(resp.status, 400, "{}", resp.body);

    handle.shutdown();
}
