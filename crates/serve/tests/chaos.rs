//! Chaos suite: a real server under seeded fault injection.
//!
//! [`FaultyService`] wraps a deterministic stub model and injects panics,
//! typed-payload errors, and delays at configured rates. The assertions
//! are availability-shaped, not rate-shaped: every request completes with
//! 200 or 500 before `reply_timeout` (no hung clients), the worker pool
//! heals back to its configured size, admission control sheds with 503
//! instead of queueing without bound, and every counter stays consistent
//! (`hits + misses == lookups`, `panics_total > 0` after injected panics).

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use kucnet_graph::{LayeredGraph, NodeId, UserId};
use kucnet_serve::{FaultConfig, FaultyService, ScoreService, ServeConfig, Server, ServerHandle};

/// A parsed HTTP response: status code and body.
struct Response {
    status: u16,
    body: String,
}

/// Sends one raw HTTP request and reads the full response.
fn send(addr: std::net::SocketAddr, raw: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut reader = BufReader::new(stream);
    let mut text = String::new();
    reader.read_to_string(&mut text).expect("read response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {text}"));
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Response { status, body }
}

/// POSTs `/recommend` for `user` and returns the parsed response.
fn recommend(addr: std::net::SocketAddr, user: u64, top_k: u64) -> Response {
    let body = format!("{{\"user\": {user}, \"top_k\": {top_k}}}");
    let raw = format!(
        "POST /recommend HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    send(addr, &raw)
}

/// Pulls one `name value` metric line out of a `/metrics` body.
fn metric(body: &str, name: &str) -> f64 {
    body.lines()
        .find_map(|line| line.strip_prefix(name).map(|rest| rest.trim()))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric `{name}` missing in:\n{body}"))
}

/// A fast deterministic model stub: user `u` scores item `i` as
/// `(u * 31 + i * 17) % 97`. No training, so chaos runs stay quick.
struct StubService {
    n_users: usize,
    n_items: usize,
}

impl ScoreService for StubService {
    fn name(&self) -> String {
        "stub".to_string()
    }

    fn n_users(&self) -> usize {
        self.n_users
    }

    fn n_items(&self) -> usize {
        self.n_items
    }

    fn build_user_graph(&self, user: UserId) -> Arc<LayeredGraph> {
        Arc::new(LayeredGraph {
            root: NodeId(user.0),
            node_lists: vec![vec![NodeId(user.0)]],
            layers: vec![],
        })
    }

    fn score_graph(&self, graph: &LayeredGraph) -> Vec<f32> {
        let u = graph.root.0 as usize;
        (0..self.n_items).map(|i| ((u * 31 + i * 17) % 97) as f32).collect()
    }
}

/// Starts a server over a fault-injecting wrapper of the stub model.
fn start_chaos_server(faults: FaultConfig, config: ServeConfig) -> ServerHandle {
    let stub: Arc<dyn ScoreService> = Arc::new(StubService { n_users: 256, n_items: 32 });
    let service: Arc<dyn ScoreService> = Arc::new(FaultyService::new(stub, faults));
    Server::start(service, config, "127.0.0.1:0").expect("bind ephemeral port")
}

/// Polls until the worker pool is back at `want` workers with at least one
/// respawn recorded, or fails after `deadline`.
fn wait_for_heal(handle: &ServerHandle, want: u64, deadline: Duration) {
    let end = Instant::now() + deadline;
    loop {
        let stats = handle.batcher_stats();
        if stats.workers_alive == want && stats.workers_respawned >= 1 {
            return;
        }
        assert!(Instant::now() < end, "pool never healed to {want}: {stats:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn burst_under_panics_completes_heals_and_counts() {
    // The acceptance scenario: 20% of subgraph builds panic under a
    // 100-request burst. Every request must complete (200 or 500) before
    // reply_timeout, the pool must heal to its configured size, and the
    // fault metrics must show up in /metrics.
    let reply_timeout = Duration::from_secs(10);
    let config = ServeConfig {
        workers: 3,
        max_batch: 8,
        flush_deadline: Duration::from_millis(1),
        cache_capacity: 8, // smaller than the user spread: builds keep happening
        reply_timeout,
        ..ServeConfig::default()
    };
    let faults = FaultConfig { seed: 7, panic_rate: 0.2, ..FaultConfig::default() };
    let handle = start_chaos_server(faults, config);
    let addr = handle.addr();

    let clients: Vec<_> = (0..100u64)
        .map(|i| {
            std::thread::spawn(move || {
                let started = Instant::now();
                // 100 distinct users, so every request exercises a build.
                let resp = recommend(addr, i % 100, 5);
                (i, resp, started.elapsed())
            })
        })
        .collect();

    let mut ok = 0u32;
    let mut failed = 0u32;
    for client in clients {
        let (i, resp, elapsed) = client.join().expect("client must not hang");
        assert!(
            elapsed < reply_timeout + Duration::from_secs(5),
            "request {i} took {elapsed:?}: client effectively hung"
        );
        match resp.status {
            200 => ok += 1,
            500 => {
                failed += 1;
                assert!(resp.body.contains("injected panic"), "request {i}: {}", resp.body);
            }
            other => panic!("request {i}: unexpected status {other}: {}", resp.body),
        }
    }
    assert!(ok > 0, "some requests must survive a 20% fault rate");
    assert!(failed > 0, "a 20% fault rate over 100 builds must hit something");

    wait_for_heal(&handle, 3, Duration::from_secs(10));

    // The server still works at full strength after the storm.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        // Post-heal request; retry on an (unlucky) injected panic.
        if recommend(addr, 200, 3).status == 200 {
            break;
        }
        assert!(Instant::now() < deadline, "server never recovered");
    }

    // Fault accounting is visible end-to-end through /metrics.
    let metrics = send(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(metrics.status, 200);
    assert!(metric(&metrics.body, "kucnet_panics_total") > 0.0, "{}", metrics.body);
    assert!(metric(&metrics.body, "kucnet_workers_respawned") > 0.0, "{}", metrics.body);
    assert_eq!(metric(&metrics.body, "kucnet_workers_alive"), 3.0, "{}", metrics.body);
    assert_eq!(metric(&metrics.body, "kucnet_queue_depth"), 0.0, "{}", metrics.body);

    // Cache counters stay balanced even with panicking builds in the mix.
    let cache = handle.cache_stats();
    assert_eq!(
        cache.hits + cache.misses,
        cache.lookups,
        "every lookup is exactly one hit or one miss: {cache:?}"
    );

    handle.shutdown();
}

#[test]
fn one_panicking_user_in_a_mixed_batch_gets_500_rest_get_200() {
    // Targeted fault: user 3's builds always panic. Six users submitted
    // concurrently (coalescing into few batches): user 3 answers 500 with
    // the panic message, every other user answers 200 — all within
    // reply_timeout.
    let reply_timeout = Duration::from_secs(10);
    let config = ServeConfig {
        workers: 1,
        max_batch: 16,
        flush_deadline: Duration::from_millis(50),
        cache_capacity: 64,
        reply_timeout,
        ..ServeConfig::default()
    };
    let faults = FaultConfig { panic_users: vec![3], ..FaultConfig::default() };
    let handle = start_chaos_server(faults, config);
    let addr = handle.addr();

    let clients: Vec<_> = (0..6u64)
        .map(|u| {
            std::thread::spawn(move || {
                let started = Instant::now();
                let resp = recommend(addr, u, 5);
                (u, resp, started.elapsed())
            })
        })
        .collect();
    for client in clients {
        let (u, resp, elapsed) = client.join().expect("client must not hang");
        assert!(elapsed < reply_timeout, "user {u} answered too slowly: {elapsed:?}");
        if u == 3 {
            assert_eq!(resp.status, 500, "targeted user must fail: {}", resp.body);
            assert!(resp.body.contains("targeted user 3"), "{}", resp.body);
        } else {
            assert_eq!(resp.status, 200, "user {u} must succeed: {}", resp.body);
        }
    }

    // The single tainted worker is replaced and keeps serving.
    wait_for_heal(&handle, 1, Duration::from_secs(10));
    assert_eq!(recommend(addr, 1, 3).status, 200, "healed pool must serve");
    handle.shutdown();
}

#[test]
fn queue_overflow_sheds_503_and_counts() {
    // A one-deep queue and slow (delayed) scoring: a concurrent burst must
    // shed most submissions with 503 while at least one goes through, and
    // shed_total must account for every 503.
    let config = ServeConfig {
        workers: 1,
        max_batch: 1,
        flush_deadline: Duration::from_millis(1),
        max_queue_depth: 1,
        cache_capacity: 1,
        ..ServeConfig::default()
    };
    let faults = FaultConfig {
        delay_rate: 1.0,
        delay: Duration::from_millis(150),
        ..FaultConfig::default()
    };
    let handle = start_chaos_server(faults, config);
    let addr = handle.addr();

    let clients: Vec<_> =
        (0..6u64).map(|u| std::thread::spawn(move || recommend(addr, u, 3))).collect();
    let responses: Vec<Response> = clients.into_iter().map(|c| c.join().expect("client")).collect();
    let ok = responses.iter().filter(|r| r.status == 200).count();
    let shed = responses.iter().filter(|r| r.status == 503).count();
    assert!(ok >= 1, "at least one request must be admitted");
    assert!(shed >= 1, "a 1-deep queue under a burst of 6 must shed");
    for r in &responses {
        assert!(
            r.status == 200 || r.status == 503,
            "only success or shed allowed, got {}: {}",
            r.status,
            r.body
        );
    }

    let metrics = send(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(metric(&metrics.body, "kucnet_shed_total") >= shed as f64, "{}", metrics.body);
    handle.shutdown();
}

#[test]
fn connection_cap_sheds_503_inline() {
    // With one allowed connection and slow scoring, concurrent clients past
    // the cap get an immediate 503 from the accept thread rather than a
    // handler thread each.
    let config = ServeConfig {
        workers: 1,
        max_connections: 1,
        flush_deadline: Duration::from_millis(1),
        ..ServeConfig::default()
    };
    let faults = FaultConfig {
        delay_rate: 1.0,
        delay: Duration::from_millis(300),
        ..FaultConfig::default()
    };
    let handle = start_chaos_server(faults, config);
    let addr = handle.addr();

    let clients: Vec<_> =
        (0..6u64).map(|u| std::thread::spawn(move || recommend(addr, u, 3))).collect();
    let responses: Vec<Response> = clients.into_iter().map(|c| c.join().expect("client")).collect();
    let ok = responses.iter().filter(|r| r.status == 200).count();
    let shed = responses.iter().filter(|r| r.status == 503).count();
    assert!(ok >= 1, "the admitted connection must succeed");
    assert!(shed >= 1, "connections past the cap must shed 503");
    assert_eq!(ok + shed, responses.len(), "only 200 or 503 expected");

    // After the burst drains, the cap frees up and the server serves again.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if recommend(addr, 9, 3).status == 200 {
            break;
        }
        assert!(Instant::now() < deadline, "cap never released");
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown();
}

#[test]
fn half_open_client_is_cut_loose_and_server_stays_live() {
    // A client that opens a connection, sends half a request, and stalls
    // forever must be disconnected by the io timeout — and must not block
    // other clients meanwhile.
    let config = ServeConfig { io_timeout: Duration::from_millis(200), ..ServeConfig::default() };
    let handle = start_chaos_server(FaultConfig::default(), config);
    let addr = handle.addr();

    let mut stalled = TcpStream::connect(addr).expect("connect");
    stalled.write_all(b"POST /recommend HTTP/1.1\r\nContent-Le").expect("partial write");
    // No more bytes ever arrive on this connection.

    // Healthy clients are unaffected while the stalled one is pending.
    assert_eq!(recommend(addr, 1, 3).status, 200);

    // The stalled connection is closed by the server within bounded time:
    // reading it must finish (error response or EOF), never hang.
    let started = Instant::now();
    stalled.set_read_timeout(Some(Duration::from_secs(5))).expect("client read timeout");
    let mut sink = String::new();
    let read = BufReader::new(stalled).read_to_string(&mut sink);
    assert!(
        read.is_ok(),
        "server must close the half-open connection, got {read:?} after {:?}",
        started.elapsed()
    );
    assert!(started.elapsed() < Duration::from_secs(5), "half-open teardown took too long");

    // And the server is still fully live.
    assert_eq!(recommend(addr, 2, 3).status, 200);
    assert_eq!(send(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").status, 200);
    handle.shutdown();
}
