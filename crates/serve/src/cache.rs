//! The user context cache: PPR-pruned subgraphs memoized per user id.
//!
//! Building a user's layered computation graph is the expensive half of
//! online scoring (PPR-guided edge selection over the CSR, per layer); the
//! graph is also fully determined by the user id for a frozen model. This
//! LRU-style cache keyed by user id lets repeat requests skip pruning
//! entirely: a hit hands back the shared [`Arc<LayeredGraph>`] handle and
//! the worker goes straight to the forward pass.
//!
//! All counters use saturating arithmetic — a long-lived server must never
//! wrap its metrics — and obey one invariant: **every lookup is exactly one
//! hit or one miss** (`hits + misses == lookups`), including the two
//! awkward cases. A lost build race (two threads miss the same cold user;
//! the loser's build is discarded) counts a *hit* for the loser, because
//! its request was ultimately served from the resident entry. A build that
//! panics counts a *miss* before the panic is re-raised, so fault
//! injection cannot skew the balance.

use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kucnet::UserState;
use kucnet_graph::{LayeredGraph, UserId};
use parking_lot::Mutex;

/// Increments an atomic counter without ever wrapping.
pub(crate) fn saturating_inc(counter: &AtomicU64) {
    // fetch_update never fails when the closure always returns Some.
    let _ =
        counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_add(1)));
}

/// Decrements an atomic counter, stopping at zero instead of wrapping.
pub(crate) fn saturating_dec(counter: &AtomicU64) {
    let _ =
        counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(1)));
}

/// Fixed per-entry bookkeeping bytes beyond the subgraph itself: the `u32`
/// key plus the two-component [`CacheVersion`] stamp and the `last_used`
/// tick. Counted by `approx_bytes` so cache-size metrics do not undercount
/// small-graph workloads.
const ENTRY_OVERHEAD_BYTES: usize = std::mem::size_of::<u32>() + 3 * std::mem::size_of::<u64>();

/// The two-component stamp a cached subgraph is keyed under: which **model
/// generation** scored it and which **graph epoch** it was built from. An
/// entry is reusable only when *both* components match the lookup — a model
/// hot-swap and a dynamic refresh each independently invalidate it, so a
/// stale subgraph can never be served across either kind of flip.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct CacheVersion {
    /// The registry's globally unique model version the entry belongs to.
    pub model: u64,
    /// The per-user graph version ([`GraphContext::user_version`]) the
    /// subgraph was built against; always 0 for static services.
    ///
    /// [`GraphContext::user_version`]: kucnet::GraphContext::user_version
    pub graph: u64,
}

impl CacheVersion {
    /// A stamp from explicit model and graph components.
    pub fn new(model: u64, graph: u64) -> Self {
        Self { model, graph }
    }
}

/// Everything the cache holds for one user: the pruned subgraph plus the
/// optional precomputed layer-1 propagation ([`UserState`]) built alongside
/// it. The pair shares one version stamp and one lifecycle.
pub type UserContext = (Arc<LayeredGraph>, Option<Arc<UserState>>);

struct Entry {
    graph: Arc<LayeredGraph>,
    /// The user's precomputed layer-1 propagation, when the scoring service
    /// materializes one at fill time. Rides the same stamp as the subgraph:
    /// both are dropped together on any version flip, so a warm resume can
    /// never mix an old `h¹` with a new model generation or graph epoch.
    state: Option<Arc<UserState>>,
    /// Stamp the subgraph was built under. Static single-model services
    /// always pass the default (0, 0); registries stamp the pinned model
    /// version and dynamic services the user's graph version, either of
    /// which going stale lazily invalidates this entry.
    version: CacheVersion,
    last_used: u64,
}

struct Inner {
    map: HashMap<u32, Entry>,
    /// Monotonic use counter; larger = more recently used.
    tick: u64,
}

/// An LRU-style cache of per-user pruned subgraphs with hit/miss counters
/// and capacity-based eviction.
pub struct SubgraphCache {
    capacity: usize,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    patched: AtomicU64,
    inner: Mutex<Inner>,
}

/// A point-in-time snapshot of cache counters.
///
/// Invariant: `hits + misses == lookups` — every lookup resolves as
/// exactly one hit or one miss, even across racing builds and builds that
/// panic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups ([`SubgraphCache::get`] calls plus
    /// [`SubgraphCache::get_or_insert_with`] calls).
    pub lookups: u64,
    /// Lookups served from a resident entry (including lost build races,
    /// which are served from the winner's entry).
    pub hits: u64,
    /// Lookups that had to build the subgraph (including builds that
    /// panicked before producing one).
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Resident entries dropped because their graph version went stale —
    /// lazily (a versioned lookup found an older stamp) or eagerly
    /// ([`SubgraphCache::invalidate_user`] after a refresh tick).
    pub invalidations: u64,
    /// Stale entries replaced in place by a rebuild at the new version
    /// through the versioned lookup path.
    pub patched: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Approximate heap bytes pinned by resident subgraphs, including
    /// per-entry key and stamp overhead.
    pub approx_bytes: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when no lookups happened yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.saturating_add(self.misses);
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl SubgraphCache {
    /// Creates a cache holding at most `capacity` subgraphs (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            patched: AtomicU64::new(0),
            inner: Mutex::new(Inner { map: HashMap::new(), tick: 0 }),
        }
    }

    /// Maximum number of resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// LRU-touches and returns the resident entry for `user` (graph handle
    /// plus the version it was built at), if any. Counts nothing — callers
    /// decide what the probe means.
    fn probe(inner: &mut Inner, user: UserId) -> Option<(UserContext, CacheVersion)> {
        inner.tick = inner.tick.saturating_add(1);
        let tick = inner.tick;
        inner.map.get_mut(&user.0).map(|entry| {
            entry.last_used = tick;
            ((Arc::clone(&entry.graph), entry.state.clone()), entry.version)
        })
    }

    /// Evicts least-recently-used entries until the map fits `capacity`.
    fn evict_over_capacity(&self, inner: &mut Inner) {
        while inner.map.len() > self.capacity {
            if let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, entry)| entry.last_used) {
                inner.map.remove(&victim);
                saturating_inc(&self.evictions);
            } else {
                break;
            }
        }
    }

    /// Looks up the subgraph of `user`, counting a hit or miss. Version
    /// agnostic: returns whatever is resident.
    pub fn get(&self, user: UserId) -> Option<Arc<LayeredGraph>> {
        saturating_inc(&self.lookups);
        let mut inner = self.inner.lock();
        match Self::probe(&mut inner, user) {
            Some(((graph, _), _)) => {
                saturating_inc(&self.hits);
                Some(graph)
            }
            None => {
                saturating_inc(&self.misses);
                None
            }
        }
    }

    /// Inserts (or refreshes) the subgraph of `user` at the default stamp
    /// (model 0, graph 0), evicting the least recently used entry if the
    /// cache is over capacity.
    pub fn insert(&self, user: UserId, graph: Arc<LayeredGraph>) {
        self.insert_versioned(user, CacheVersion::default(), graph);
    }

    /// Inserts (or refreshes) the subgraph of `user` stamped with `version`.
    pub fn insert_versioned(&self, user: UserId, version: CacheVersion, graph: Arc<LayeredGraph>) {
        let mut inner = self.inner.lock();
        inner.tick = inner.tick.saturating_add(1);
        let tick = inner.tick;
        inner.map.insert(user.0, Entry { graph, state: None, version, last_used: tick });
        self.evict_over_capacity(&mut inner);
    }

    /// Drops the resident entry of `user`, if any, counting an invalidation
    /// when something was actually dropped. Called eagerly after a refresh
    /// tick for users whose subgraph changed; not a lookup, so the
    /// hit/miss/lookup balance is untouched.
    pub fn invalidate_user(&self, user: UserId) -> bool {
        let removed = self.inner.lock().map.remove(&user.0).is_some();
        if removed {
            saturating_inc(&self.invalidations);
        }
        removed
    }

    /// Returns the cached subgraph of `user`, building and inserting it via
    /// `build` on a miss. The build runs outside the cache lock so slow
    /// pruning never blocks hits for other users; if two threads race on
    /// the same cold user, the first inserted graph wins and both get the
    /// same handle.
    ///
    /// Counter semantics (one count per call, so `hits + misses ==
    /// lookups` always holds):
    ///
    /// - resident on first probe → **hit**;
    /// - built and inserted → **miss**;
    /// - lost race (another thread inserted while this one built; the
    ///   discarded build is not separately counted) → **hit**, and the
    ///   *resident* handle is returned so racers agree on the graph;
    /// - `build` panicked → **miss**, then the panic is re-raised.
    pub fn get_or_insert_with(
        &self,
        user: UserId,
        build: impl FnOnce() -> Arc<LayeredGraph>,
    ) -> Arc<LayeredGraph> {
        self.get_or_insert_versioned(user, CacheVersion::default(), build)
    }

    /// Version-aware variant of [`get_or_insert_with`]: a resident entry
    /// only counts as a hit when its stamp equals `version` (both the model
    /// and graph components). A stale entry (any other stamp) is dropped
    /// under the lock — counting an **invalidation** — and the lookup
    /// proceeds as a miss; when the rebuild lands it additionally counts as
    /// **patched** (a lazy in-place version upgrade). Every call still
    /// resolves as exactly one hit or one miss, so `hits + misses ==
    /// lookups` holds under concurrent invalidation and racing version
    /// bumps.
    ///
    /// [`get_or_insert_with`]: SubgraphCache::get_or_insert_with
    pub fn get_or_insert_versioned(
        &self,
        user: UserId,
        version: CacheVersion,
        build: impl FnOnce() -> Arc<LayeredGraph>,
    ) -> Arc<LayeredGraph> {
        self.get_or_insert_versioned_traced(user, version, build).0
    }

    /// [`get_or_insert_versioned`] that additionally reports whether the
    /// lookup resolved as a hit (`true`) or had to build (`false`) — the
    /// per-variant hit/miss attribution the model registry records. The
    /// flag mirrors the global counters exactly: lost build races report
    /// `true` (served from the winner's entry), panicking builds report
    /// nothing because the panic propagates after the miss is counted.
    ///
    /// [`get_or_insert_versioned`]: SubgraphCache::get_or_insert_versioned
    pub fn get_or_insert_versioned_traced(
        &self,
        user: UserId,
        version: CacheVersion,
        build: impl FnOnce() -> Arc<LayeredGraph>,
    ) -> (Arc<LayeredGraph>, bool) {
        let ((graph, _), hit) =
            self.get_or_insert_context_versioned(user, version, || (build(), None));
        (graph, hit)
    }

    /// The full fill path: like [`get_or_insert_versioned_traced`] but the
    /// build closure returns the subgraph *plus* an optional precomputed
    /// [`UserState`], and a hit hands both back. The pair is stored under
    /// one stamp, so the state can never outlive the subgraph it was
    /// derived from (or vice versa) across a model swap, precision toggle,
    /// or dynamic-graph tick. Counter semantics are identical — the state
    /// is payload, not a separately accounted object.
    ///
    /// [`get_or_insert_versioned_traced`]: SubgraphCache::get_or_insert_versioned_traced
    pub fn get_or_insert_context_versioned(
        &self,
        user: UserId,
        version: CacheVersion,
        build: impl FnOnce() -> UserContext,
    ) -> (UserContext, bool) {
        saturating_inc(&self.lookups);
        let mut was_stale = false;
        {
            let mut inner = self.inner.lock();
            match Self::probe(&mut inner, user) {
                Some((ctx, v)) if v == version => {
                    saturating_inc(&self.hits);
                    return (ctx, true);
                }
                Some(_) => {
                    // Stale stamp: drop it now so no other versioned lookup
                    // can be served from it while this thread rebuilds.
                    inner.map.remove(&user.0);
                    saturating_inc(&self.invalidations);
                    was_stale = true;
                }
                None => {}
            }
        }
        let (graph, state) = match catch_unwind(AssertUnwindSafe(build)) {
            Ok(ctx) => ctx,
            Err(payload) => {
                // The lookup still resolves — as a miss — before the fault
                // propagates, so panicking builds never skew the balance.
                saturating_inc(&self.misses);
                resume_unwind(payload);
            }
        };
        let mut inner = self.inner.lock();
        if let Some((resident, v)) = Self::probe(&mut inner, user) {
            if v == version {
                // Another thread built it first. This call is served from
                // the resident entry, so it is a hit; the discarded build
                // stays uncounted.
                saturating_inc(&self.hits);
                return (resident, true);
            }
            // A racing insert landed an entry at a different version;
            // replace it with this build (no extra invalidation count — the
            // racer's lookup owns its own accounting).
            inner.map.remove(&user.0);
        }
        saturating_inc(&self.misses);
        if was_stale {
            saturating_inc(&self.patched);
        }
        inner.tick = inner.tick.saturating_add(1);
        let tick = inner.tick;
        inner.map.insert(
            user.0,
            Entry { graph: Arc::clone(&graph), state: state.clone(), version, last_used: tick },
        );
        self.evict_over_capacity(&mut inner);
        ((graph, state), false)
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when no subgraphs are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of counters and footprint.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            patched: self.patched.load(Ordering::Relaxed),
            entries: inner.map.len(),
            approx_bytes: inner
                .map
                .values()
                .map(|e| {
                    e.graph.approx_bytes()
                        + e.state.as_ref().map_or(0, |s| s.approx_bytes())
                        + ENTRY_OVERHEAD_BYTES
                })
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kucnet_graph::NodeId;

    fn tiny_graph(root: u32) -> Arc<LayeredGraph> {
        Arc::new(LayeredGraph {
            root: NodeId(root),
            node_lists: vec![vec![NodeId(root)]],
            layers: vec![],
        })
    }

    #[test]
    fn miss_then_hit_counts() {
        let cache = SubgraphCache::new(4);
        assert!(cache.get(UserId(1)).is_none());
        cache.insert(UserId(1), tiny_graph(1));
        assert!(cache.get(UserId(1)).is_some());
        let stats = cache.stats();
        assert_eq!((stats.lookups, stats.hits, stats.misses), (2, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = SubgraphCache::new(2);
        cache.insert(UserId(1), tiny_graph(1));
        cache.insert(UserId(2), tiny_graph(2));
        // Touch user 1 so user 2 becomes the LRU victim.
        assert!(cache.get(UserId(1)).is_some());
        cache.insert(UserId(3), tiny_graph(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(UserId(2)).is_none(), "LRU entry must be evicted");
        assert!(cache.get(UserId(1)).is_some());
        assert!(cache.get(UserId(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn get_or_insert_builds_once_per_resident_entry() {
        let cache = SubgraphCache::new(4);
        let mut builds = 0usize;
        for _ in 0..3 {
            let g = cache.get_or_insert_with(UserId(7), || {
                builds += 1;
                tiny_graph(7)
            });
            assert_eq!(g.root, NodeId(7));
        }
        assert_eq!(builds, 1);
        let stats = cache.stats();
        assert_eq!((stats.lookups, stats.hits, stats.misses), (3, 2, 1));
    }

    #[test]
    fn lost_build_race_counts_a_hit_not_a_second_miss() {
        // Regression: the loser of a build race used to count a miss for
        // its discarded build and no hit for the resident handle it was
        // actually served, skewing hit_rate downward under concurrency.
        // The race is simulated by a build that inserts the "winner's"
        // entry re-entrantly before returning the loser's build.
        let cache = SubgraphCache::new(4);
        let got = cache.get_or_insert_with(UserId(7), || {
            cache.insert(UserId(7), tiny_graph(42)); // another thread wins
            tiny_graph(7) // the loser's build, to be discarded
        });
        assert_eq!(got.root, NodeId(42), "racers must agree on the resident graph");
        let stats = cache.stats();
        assert_eq!(
            (stats.lookups, stats.hits, stats.misses),
            (1, 1, 0),
            "a lost race is one lookup served from cache: {stats:?}"
        );
    }

    #[test]
    fn counters_balance_under_builds_races_and_panics() {
        let cache = SubgraphCache::new(4);
        // 1: plain miss (builds and inserts).
        cache.get_or_insert_with(UserId(1), || tiny_graph(1));
        // 2: plain hit.
        cache.get_or_insert_with(UserId(1), || unreachable!("resident"));
        // 3: lost race → hit.
        cache.get_or_insert_with(UserId(2), || {
            cache.insert(UserId(2), tiny_graph(2));
            tiny_graph(2)
        });
        // 4: panicking build → miss, and the panic propagates.
        let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| {
            cache.get_or_insert_with(UserId(3), || panic!("boom"))
        }));
        assert!(panicked.is_err(), "build panic must propagate");
        // 5: get miss, 6: get hit.
        assert!(cache.get(UserId(9)).is_none());
        assert!(cache.get(UserId(1)).is_some());

        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (3, 3), "{stats:?}");
        assert_eq!(stats.lookups, 6, "{stats:?}");
        assert_eq!(
            stats.hits + stats.misses,
            stats.lookups,
            "every lookup is exactly one hit or one miss: {stats:?}"
        );
        assert!(cache.get(UserId(3)).is_none(), "panicked build must leave no entry");
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let cache = SubgraphCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert(UserId(1), tiny_graph(1));
        cache.insert(UserId(2), tiny_graph(2));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn stats_report_bytes() {
        let cache = SubgraphCache::new(4);
        cache.insert(UserId(1), tiny_graph(1));
        assert!(cache.stats().approx_bytes > 0);
    }

    #[test]
    fn approx_bytes_counts_key_and_stamp_overhead() {
        // Regression: approx_bytes used to sum only graph payloads, so a
        // cache of tiny graphs under-reported its footprint. Each entry now
        // carries key (u32) + version + last_used (2x u64) overhead.
        let cache = SubgraphCache::new(8);
        cache.insert(UserId(1), tiny_graph(1));
        let one = cache.stats().approx_bytes;
        cache.insert(UserId(2), tiny_graph(2));
        let two = cache.stats().approx_bytes;
        let per_graph = tiny_graph(1).approx_bytes();
        assert_eq!(one, per_graph + ENTRY_OVERHEAD_BYTES);
        assert_eq!(two - one, per_graph + ENTRY_OVERHEAD_BYTES);
        assert_eq!(ENTRY_OVERHEAD_BYTES, 28, "u32 key + (model, graph, last_used) u64 stamps");
    }

    #[test]
    fn stale_version_invalidates_and_patches() {
        let cache = SubgraphCache::new(4);
        let v = |graph: u64| CacheVersion::new(0, graph);
        // Build at graph version 1.
        let g1 = cache.get_or_insert_versioned(UserId(5), v(1), || tiny_graph(1));
        assert_eq!(g1.root, NodeId(1));
        // Same version: hit, no rebuild.
        let again = cache.get_or_insert_versioned(UserId(5), v(1), || unreachable!("resident"));
        assert_eq!(again.root, NodeId(1));
        // Version bumped: stale entry dropped and rebuilt.
        let g2 = cache.get_or_insert_versioned(UserId(5), v(2), || tiny_graph(2));
        assert_eq!(g2.root, NodeId(2));
        let stats = cache.stats();
        assert_eq!((stats.lookups, stats.hits, stats.misses), (3, 1, 2), "{stats:?}");
        assert_eq!((stats.invalidations, stats.patched), (1, 1), "{stats:?}");
    }

    #[test]
    fn model_component_invalidates_independently_of_graph_component() {
        // A hot-swap (model bump) and a refresh (graph bump) must each drop
        // a resident entry on their own — an entry from model 1 can never be
        // served under model 2 even on an unchanged graph epoch, and vice
        // versa.
        let cache = SubgraphCache::new(4);
        let (g, hit) =
            cache.get_or_insert_versioned_traced(UserId(4), CacheVersion::new(1, 0), || {
                tiny_graph(1)
            });
        assert_eq!((g.root, hit), (NodeId(1), false), "cold build is a miss");
        let (_, hit) = cache.get_or_insert_versioned_traced(
            UserId(4),
            CacheVersion::new(1, 0),
            || unreachable!(),
        );
        assert!(hit, "matching (model, graph) stamp is a hit");
        // Model swap, same graph epoch: stale.
        let (g, hit) =
            cache.get_or_insert_versioned_traced(UserId(4), CacheVersion::new(2, 0), || {
                tiny_graph(2)
            });
        assert_eq!((g.root, hit), (NodeId(2), false));
        // Graph refresh, same model: stale again.
        let (g, hit) =
            cache.get_or_insert_versioned_traced(UserId(4), CacheVersion::new(2, 1), || {
                tiny_graph(3)
            });
        assert_eq!((g.root, hit), (NodeId(3), false));
        let stats = cache.stats();
        assert_eq!((stats.lookups, stats.hits, stats.misses), (4, 1, 3), "{stats:?}");
        assert_eq!((stats.invalidations, stats.patched), (2, 2), "{stats:?}");
    }

    #[test]
    fn user_state_rides_the_entry_and_its_version_stamp() {
        let state = |q: bool| Arc::new(UserState::new(q, kucnet_tensor::Matrix::zeros(1, 4)));
        let cache = SubgraphCache::new(4);
        let v1 = CacheVersion::new(1, 0);
        // Fill with a quantized state attached.
        let ((_, st), hit) = cache
            .get_or_insert_context_versioned(UserId(6), v1, || (tiny_graph(6), Some(state(true))));
        assert!(!hit);
        assert!(st.expect("state stored at fill").quantized());
        // A hit hands the same state back without rebuilding.
        let ((_, st), hit) =
            cache.get_or_insert_context_versioned(UserId(6), v1, || unreachable!("resident"));
        assert!(hit);
        assert!(st.expect("state survives a hit").quantized());
        // A version flip (e.g. precision toggle republish) drops graph and
        // state together; the rebuild may attach a different-precision state.
        let v2 = CacheVersion::new(2, 0);
        let ((_, st), hit) = cache
            .get_or_insert_context_versioned(UserId(6), v2, || (tiny_graph(6), Some(state(false))));
        assert!(!hit);
        assert!(!st.expect("rebuilt state").quantized());
        // The graph-only path leaves the state slot empty.
        let (g, _) = cache.get_or_insert_versioned_traced(UserId(7), v2, || tiny_graph(7));
        assert_eq!(g.root, NodeId(7));
        let ((_, st), hit) =
            cache.get_or_insert_context_versioned(UserId(7), v2, || unreachable!("resident"));
        assert!(hit);
        assert!(st.is_none(), "graph-only fills carry no state");
    }

    #[test]
    fn approx_bytes_counts_attached_state() {
        let cache = SubgraphCache::new(4);
        let v = CacheVersion::default();
        cache.get_or_insert_context_versioned(UserId(1), v, || (tiny_graph(1), None));
        let without = cache.stats().approx_bytes;
        let h1 = kucnet_tensor::Matrix::zeros(3, 8);
        cache.get_or_insert_context_versioned(UserId(2), v, || {
            (tiny_graph(2), Some(Arc::new(UserState::new(false, h1))))
        });
        let with = cache.stats().approx_bytes;
        assert_eq!(
            with - without,
            tiny_graph(2).approx_bytes() + ENTRY_OVERHEAD_BYTES + 3 * 8 * 4,
            "an attached state adds its h1 payload bytes"
        );
    }

    #[test]
    fn eager_invalidation_counts_only_when_resident() {
        let cache = SubgraphCache::new(4);
        assert!(!cache.invalidate_user(UserId(3)), "nothing resident yet");
        cache.insert(UserId(3), tiny_graph(3));
        assert!(cache.invalidate_user(UserId(3)));
        assert!(!cache.invalidate_user(UserId(3)), "already dropped");
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1, "{stats:?}");
        assert_eq!(stats.lookups, 0, "invalidation is not a lookup: {stats:?}");
    }

    #[test]
    fn counters_balance_under_concurrent_invalidation() {
        // The satellite invariant: hits + misses == lookups must hold while
        // versioned lookups race with eager invalidations and version bumps.
        let cache = Arc::new(SubgraphCache::new(64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let user = UserId((i % 8) as u32);
                    let version = CacheVersion::new((t + i) % 2, (t + i) % 3);
                    let g = c.get_or_insert_versioned(user, version, || tiny_graph(user.0));
                    assert_eq!(g.root, NodeId(user.0));
                    if i % 7 == 0 {
                        c.invalidate_user(user);
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
        let stats = cache.stats();
        assert_eq!(stats.lookups, 800, "{stats:?}");
        assert_eq!(
            stats.hits + stats.misses,
            stats.lookups,
            "every lookup is exactly one hit or one miss: {stats:?}"
        );
        assert!(stats.invalidations > 0, "races must have invalidated entries: {stats:?}");
    }

    #[test]
    fn saturating_inc_never_wraps() {
        let c = AtomicU64::new(u64::MAX - 1);
        saturating_inc(&c);
        saturating_inc(&c);
        saturating_inc(&c);
        assert_eq!(c.load(Ordering::Relaxed), u64::MAX);
    }

    #[test]
    fn saturating_dec_stops_at_zero() {
        let c = AtomicU64::new(1);
        saturating_dec(&c);
        saturating_dec(&c);
        assert_eq!(c.load(Ordering::Relaxed), 0);
    }
}
