//! The user context cache: PPR-pruned subgraphs memoized per user id.
//!
//! Building a user's layered computation graph is the expensive half of
//! online scoring (PPR-guided edge selection over the CSR, per layer); the
//! graph is also fully determined by the user id for a frozen model. This
//! LRU-style cache keyed by user id lets repeat requests skip pruning
//! entirely: a hit hands back the shared [`Arc<LayeredGraph>`] handle and
//! the worker goes straight to the forward pass.
//!
//! All counters use saturating arithmetic — a long-lived server must never
//! wrap its metrics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kucnet_graph::{LayeredGraph, UserId};
use parking_lot::Mutex;

/// Increments an atomic counter without ever wrapping.
pub(crate) fn saturating_inc(counter: &AtomicU64) {
    // fetch_update never fails when the closure always returns Some.
    let _ =
        counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_add(1)));
}

struct Entry {
    graph: Arc<LayeredGraph>,
    last_used: u64,
}

struct Inner {
    map: HashMap<u32, Entry>,
    /// Monotonic use counter; larger = more recently used.
    tick: u64,
}

/// An LRU-style cache of per-user pruned subgraphs with hit/miss counters
/// and capacity-based eviction.
pub struct SubgraphCache {
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inner: Mutex<Inner>,
}

/// A point-in-time snapshot of cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build the subgraph.
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Approximate heap bytes pinned by resident subgraphs.
    pub approx_bytes: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when no lookups happened yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.saturating_add(self.misses);
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl SubgraphCache {
    /// Creates a cache holding at most `capacity` subgraphs (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inner: Mutex::new(Inner { map: HashMap::new(), tick: 0 }),
        }
    }

    /// Maximum number of resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up the subgraph of `user`, counting a hit or miss.
    pub fn get(&self, user: UserId) -> Option<Arc<LayeredGraph>> {
        let mut inner = self.inner.lock();
        inner.tick = inner.tick.saturating_add(1);
        let tick = inner.tick;
        match inner.map.get_mut(&user.0) {
            Some(entry) => {
                entry.last_used = tick;
                saturating_inc(&self.hits);
                Some(Arc::clone(&entry.graph))
            }
            None => {
                saturating_inc(&self.misses);
                None
            }
        }
    }

    /// Inserts (or refreshes) the subgraph of `user`, evicting the least
    /// recently used entry if the cache is over capacity.
    pub fn insert(&self, user: UserId, graph: Arc<LayeredGraph>) {
        let mut inner = self.inner.lock();
        inner.tick = inner.tick.saturating_add(1);
        let tick = inner.tick;
        inner.map.insert(user.0, Entry { graph, last_used: tick });
        while inner.map.len() > self.capacity {
            if let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, entry)| entry.last_used) {
                inner.map.remove(&victim);
                saturating_inc(&self.evictions);
            } else {
                break;
            }
        }
    }

    /// Returns the cached subgraph of `user`, building and inserting it via
    /// `build` on a miss. The build runs outside the cache lock so slow
    /// pruning never blocks hits for other users; if two threads race on
    /// the same cold user, the first inserted graph wins and both get the
    /// same handle.
    pub fn get_or_insert_with(
        &self,
        user: UserId,
        build: impl FnOnce() -> Arc<LayeredGraph>,
    ) -> Arc<LayeredGraph> {
        if let Some(graph) = self.get(user) {
            return graph;
        }
        let built = build();
        let mut inner = self.inner.lock();
        inner.tick = inner.tick.saturating_add(1);
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(&user.0) {
            // Another thread built it first; keep the resident handle.
            entry.last_used = tick;
            return Arc::clone(&entry.graph);
        }
        inner.map.insert(user.0, Entry { graph: Arc::clone(&built), last_used: tick });
        while inner.map.len() > self.capacity {
            if let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, entry)| entry.last_used) {
                inner.map.remove(&victim);
                saturating_inc(&self.evictions);
            } else {
                break;
            }
        }
        built
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when no subgraphs are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of counters and footprint.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: inner.map.len(),
            approx_bytes: inner.map.values().map(|e| e.graph.approx_bytes()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kucnet_graph::NodeId;

    fn tiny_graph(root: u32) -> Arc<LayeredGraph> {
        Arc::new(LayeredGraph {
            root: NodeId(root),
            node_lists: vec![vec![NodeId(root)]],
            layers: vec![],
        })
    }

    #[test]
    fn miss_then_hit_counts() {
        let cache = SubgraphCache::new(4);
        assert!(cache.get(UserId(1)).is_none());
        cache.insert(UserId(1), tiny_graph(1));
        assert!(cache.get(UserId(1)).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = SubgraphCache::new(2);
        cache.insert(UserId(1), tiny_graph(1));
        cache.insert(UserId(2), tiny_graph(2));
        // Touch user 1 so user 2 becomes the LRU victim.
        assert!(cache.get(UserId(1)).is_some());
        cache.insert(UserId(3), tiny_graph(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(UserId(2)).is_none(), "LRU entry must be evicted");
        assert!(cache.get(UserId(1)).is_some());
        assert!(cache.get(UserId(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn get_or_insert_builds_once_per_resident_entry() {
        let cache = SubgraphCache::new(4);
        let mut builds = 0usize;
        for _ in 0..3 {
            let g = cache.get_or_insert_with(UserId(7), || {
                builds += 1;
                tiny_graph(7)
            });
            assert_eq!(g.root, NodeId(7));
        }
        assert_eq!(builds, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let cache = SubgraphCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert(UserId(1), tiny_graph(1));
        cache.insert(UserId(2), tiny_graph(2));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn stats_report_bytes() {
        let cache = SubgraphCache::new(4);
        cache.insert(UserId(1), tiny_graph(1));
        assert!(cache.stats().approx_bytes > 0);
    }

    #[test]
    fn saturating_inc_never_wraps() {
        let c = AtomicU64::new(u64::MAX - 1);
        saturating_inc(&c);
        saturating_inc(&c);
        saturating_inc(&c);
        assert_eq!(c.load(Ordering::Relaxed), u64::MAX);
    }
}
