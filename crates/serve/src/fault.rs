//! Seeded, deterministic fault injection for the serving path.
//!
//! [`FaultyService`] wraps any [`ScoreService`] and injects faults at
//! configurable rates: panics (string payload), "error replies" (panics
//! with a typed non-string [`InjectedFault`] payload, exercising the
//! payload-agnostic capture path in `kucnet-par`), and delays. The chaos
//! test suite and `bench_chaos` use it to prove the server contains
//! faults instead of propagating them: one hostile subgraph build must
//! cost exactly one 500, never a hung client or a silently shrunken
//! worker pool.
//!
//! Fault decisions are a pure function of `(seed, call counter)` via a
//! SplitMix64 finalizer, so a single-threaded caller sees an exactly
//! reproducible fault sequence; under concurrency the *sequence* of draws
//! is fixed by the seed while their assignment to calls follows arrival
//! order. `panic_users` additionally forces a panic on every subgraph
//! build for the listed user ids — the deterministic hook the mixed-batch
//! regression test pins its 200/500 split on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use kucnet_graph::{LayeredGraph, UserId};
use kucnet_tensor::MatrixPool;

use crate::cache::saturating_inc;
use crate::ScoreService;

/// Fault rates and targeting for a [`FaultyService`].
///
/// `panic_rate`, `error_rate`, and `delay_rate` partition one uniform draw
/// per intercepted call, so their sum must stay `<= 1.0`; the remainder is
/// the pass-through probability.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Probability a [`build_user_graph`](ScoreService::build_user_graph)
    /// call panics with a string payload.
    pub panic_rate: f64,
    /// Probability a call panics with a typed [`InjectedFault`] payload
    /// (a non-string "error reply").
    pub error_rate: f64,
    /// Probability a call stalls for [`delay`](FaultConfig::delay) before
    /// proceeding normally.
    pub delay_rate: f64,
    /// How long an injected delay stalls the call.
    pub delay: Duration,
    /// User ids whose subgraph builds *always* panic, independent of the
    /// rates above (deterministic targeting for regression tests).
    pub panic_users: Vec<u32>,
    /// Probability a [`score_graph`](ScoreService::score_graph) /
    /// [`score_graph_pooled`](ScoreService::score_graph_pooled) call
    /// panics (builds and scores fail independently).
    pub score_panic_rate: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0xC0FF_EE00,
            panic_rate: 0.0,
            error_rate: 0.0,
            delay_rate: 0.0,
            delay: Duration::from_millis(1),
            panic_users: Vec::new(),
            score_panic_rate: 0.0,
        }
    }
}

/// Counters describing what a [`FaultyService`] actually injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Calls intercepted (builds + scores).
    pub calls: u64,
    /// String-payload panics injected (targeted + rate-driven).
    pub injected_panics: u64,
    /// Typed-payload ([`InjectedFault`]) panics injected.
    pub injected_errors: u64,
    /// Delays injected.
    pub injected_delays: u64,
}

/// Typed panic payload for injected "error replies": deliberately not a
/// `String`, so fault capture must survive arbitrary payloads.
#[derive(Clone, Copy, Debug)]
pub struct InjectedFault {
    /// User whose call carried the fault.
    pub user: u32,
    /// Global call number the fault fired on.
    pub call: u64,
}

/// A [`ScoreService`] decorator injecting seeded, deterministic faults.
pub struct FaultyService {
    inner: Arc<dyn ScoreService>,
    config: FaultConfig,
    calls: AtomicU64,
    panics: AtomicU64,
    errors: AtomicU64,
    delays: AtomicU64,
}

/// SplitMix64 finalizer: a well-mixed 64-bit hash of `x`.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps a hash onto a uniform draw in `[0, 1)`.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultyService {
    /// Wraps `inner`, injecting faults per `config`.
    pub fn new(inner: Arc<dyn ScoreService>, config: FaultConfig) -> Self {
        Self {
            inner,
            config,
            calls: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            delays: AtomicU64::new(0),
        }
    }

    /// Snapshot of injection counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            calls: self.calls.load(Ordering::Relaxed),
            injected_panics: self.panics.load(Ordering::Relaxed),
            injected_errors: self.errors.load(Ordering::Relaxed),
            injected_delays: self.delays.load(Ordering::Relaxed),
        }
    }

    /// Rolls the fault dice for one intercepted call; panics or delays
    /// according to the configured rates, otherwise returns normally.
    fn roll(&self, user: u32, panic_rate: f64) {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        let r = unit(mix64(self.config.seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        if r < panic_rate {
            saturating_inc(&self.panics);
            // audit: allow(no-panic) — deliberate fault injection; panicking is this type's purpose
            panic!("injected panic: user {user}, call {n}");
        }
        if r < panic_rate + self.config.error_rate {
            saturating_inc(&self.errors);
            std::panic::panic_any(InjectedFault { user, call: n });
        }
        if r < panic_rate + self.config.error_rate + self.config.delay_rate {
            saturating_inc(&self.delays);
            std::thread::sleep(self.config.delay);
        }
    }
}

impl ScoreService for FaultyService {
    fn name(&self) -> String {
        format!("faulty({})", self.inner.name())
    }

    fn n_users(&self) -> usize {
        self.inner.n_users()
    }

    fn n_items(&self) -> usize {
        self.inner.n_items()
    }

    fn build_user_graph(&self, user: UserId) -> Arc<LayeredGraph> {
        if self.config.panic_users.contains(&user.0) {
            saturating_inc(&self.panics);
            // audit: allow(no-panic) — deliberate fault injection; panicking is this type's purpose
            panic!("injected panic: targeted user {}", user.0);
        }
        self.roll(user.0, self.config.panic_rate);
        self.inner.build_user_graph(user)
    }

    fn score_graph(&self, graph: &LayeredGraph) -> Vec<f32> {
        self.roll(graph.root.0, self.config.score_panic_rate);
        self.inner.score_graph(graph)
    }

    fn score_graph_pooled(&self, pool: &mut MatrixPool, graph: &LayeredGraph) -> Vec<f32> {
        self.roll(graph.root.0, self.config.score_panic_rate);
        self.inner.score_graph_pooled(pool, graph)
    }

    fn explain_item(
        &self,
        user: UserId,
        item: u32,
        threshold: f32,
    ) -> Option<kucnet::ExplainOutput> {
        // Explanations pass through un-faulted: chaos tests target the
        // scoring path, and an explanation must stay comparable bytewise to
        // its offline reference even under injection.
        self.inner.explain_item(user, item, threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kucnet_graph::NodeId;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    struct Clean {
        n_items: usize,
    }

    impl ScoreService for Clean {
        fn name(&self) -> String {
            "clean".to_string()
        }

        fn n_users(&self) -> usize {
            8
        }

        fn n_items(&self) -> usize {
            self.n_items
        }

        fn build_user_graph(&self, user: UserId) -> Arc<LayeredGraph> {
            Arc::new(LayeredGraph {
                root: NodeId(user.0),
                node_lists: vec![vec![NodeId(user.0)]],
                layers: vec![],
            })
        }

        fn score_graph(&self, graph: &LayeredGraph) -> Vec<f32> {
            (0..self.n_items).map(|i| (graph.root.0 as usize + i) as f32).collect()
        }
    }

    fn faulty(config: FaultConfig) -> FaultyService {
        FaultyService::new(Arc::new(Clean { n_items: 5 }), config)
    }

    #[test]
    fn zero_rates_pass_through() {
        let svc = faulty(FaultConfig::default());
        for u in 0..8u32 {
            let scores = svc.score_user(UserId(u));
            assert_eq!(scores.len(), 5);
        }
        let stats = svc.stats();
        assert_eq!(stats.injected_panics + stats.injected_errors + stats.injected_delays, 0);
        assert!(stats.calls >= 16, "builds and scores are both intercepted: {stats:?}");
    }

    #[test]
    fn targeted_user_always_panics() {
        let svc = faulty(FaultConfig { panic_users: vec![3], ..FaultConfig::default() });
        for _ in 0..3 {
            let err = catch_unwind(AssertUnwindSafe(|| svc.build_user_graph(UserId(3))))
                .expect_err("targeted build must panic");
            let msg = err.downcast_ref::<String>().expect("string payload");
            assert!(msg.contains("targeted user 3"), "{msg}");
        }
        // Other users are untouched.
        assert_eq!(svc.build_user_graph(UserId(2)).root, NodeId(2));
        assert_eq!(svc.stats().injected_panics, 3);
    }

    #[test]
    fn panic_rate_one_always_panics_and_rate_zero_never_does() {
        let always = faulty(FaultConfig { panic_rate: 1.0, ..FaultConfig::default() });
        assert!(catch_unwind(AssertUnwindSafe(|| always.build_user_graph(UserId(0)))).is_err());
        let never = faulty(FaultConfig { panic_rate: 0.0, ..FaultConfig::default() });
        assert!(catch_unwind(AssertUnwindSafe(|| never.build_user_graph(UserId(0)))).is_ok());
    }

    #[test]
    fn fault_sequence_is_deterministic_for_a_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let svc = faulty(FaultConfig { seed, panic_rate: 0.3, ..FaultConfig::default() });
            (0..40u32)
                .map(|u| {
                    catch_unwind(AssertUnwindSafe(|| svc.build_user_graph(UserId(u % 8)))).is_err()
                })
                .collect()
        };
        assert_eq!(run(42), run(42), "same seed, same fault sequence");
        assert_ne!(run(42), run(43), "different seeds must differ somewhere");
        assert!(run(42).iter().any(|&p| p), "rate 0.3 over 40 calls must panic at least once");
        assert!(!run(42).iter().all(|&p| p), "rate 0.3 must also pass some calls");
    }

    #[test]
    fn error_faults_carry_typed_payloads() {
        let svc = faulty(FaultConfig { error_rate: 1.0, ..FaultConfig::default() });
        let err = catch_unwind(AssertUnwindSafe(|| svc.build_user_graph(UserId(5))))
            .expect_err("error fault must unwind");
        let fault = err.downcast_ref::<InjectedFault>().expect("typed payload");
        assert_eq!(fault.user, 5);
        assert_eq!(svc.stats().injected_errors, 1);
    }

    #[test]
    fn delay_faults_stall_but_succeed() {
        let svc = faulty(FaultConfig {
            delay_rate: 1.0,
            delay: Duration::from_millis(20),
            ..FaultConfig::default()
        });
        let started = std::time::Instant::now();
        let graph = svc.build_user_graph(UserId(1));
        assert_eq!(graph.root, NodeId(1));
        assert!(started.elapsed() >= Duration::from_millis(15), "delay must be injected");
        assert_eq!(svc.stats().injected_delays, 1);
    }
}
