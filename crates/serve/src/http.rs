//! A dependency-free HTTP/1.1 subset: just enough protocol to serve
//! `POST /recommend`, `GET /healthz`, and `GET /metrics` over
//! `std::net::TcpStream`, plus a strict flat-JSON reader for request
//! bodies.
//!
//! Scope is deliberate: one request per connection (`Connection: close`),
//! `Content-Length` bodies only (no chunked encoding), bounded header and
//! body sizes. Anything outside that subset is a 400, never a panic.

use std::io::{BufRead, Write};

use crate::ServeError;

/// Upper bound on a request body (bytes); larger bodies are rejected.
const MAX_BODY_BYTES: u64 = 64 * 1024;
/// Upper bound on the number of request headers.
const MAX_HEADERS: usize = 64;
/// Upper bound on a single request/header line (bytes).
const MAX_LINE_BYTES: usize = 8 * 1024;

/// A parsed HTTP request: method, path, lower-cased headers, raw body.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request target path, query string included.
    pub path: String,
    /// Headers as `(lowercased-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// The first value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == want).map(|(_, v)| v.as_str())
    }
}

/// Reads one line terminated by `\n`, rejecting lines over
/// [`MAX_LINE_BYTES`], and strips the trailing `\r\n` / `\n`.
///
/// EOF before the terminating `\n` is a protocol violation, not a line: a
/// peer that disconnects mid-header (load generators do this constantly)
/// must produce a 400, never a truncated request parsed as if complete.
fn read_line(reader: &mut impl BufRead) -> Result<String, ServeError> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match std::io::Read::read(reader, &mut byte) {
            Ok(0) => {
                return Err(ServeError::BadRequest("connection closed mid-line".to_string()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE_BYTES {
                    return Err(ServeError::BadRequest("header line too long".to_string()));
                }
            }
            Err(e) => return Err(ServeError::BadRequest(format!("read failed: {e}"))),
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| ServeError::BadRequest("non-UTF-8 header".to_string()))
}

/// Parses one HTTP/1.1 request (request line, headers, `Content-Length`
/// body) from `reader`. Every protocol violation maps to
/// [`ServeError::BadRequest`].
pub fn http_request(reader: &mut impl BufRead) -> Result<HttpRequest, ServeError> {
    let request_line = read_line(reader)?;
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) if !m.is_empty() && !p.is_empty() => (m.to_string(), p.to_string()),
        _ => return Err(ServeError::BadRequest("malformed request line".to_string())),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ServeError::BadRequest("too many headers".to_string()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ServeError::BadRequest("malformed header".to_string()));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = HttpRequest { method, path, headers, body: Vec::new() };
    if let Some(raw) = request.header("content-length") {
        let length: u64 = raw
            .parse()
            .map_err(|_| ServeError::BadRequest("invalid Content-Length".to_string()))?;
        if length > MAX_BODY_BYTES {
            return Err(ServeError::BadRequest("request body too large".to_string()));
        }
        // Checked conversion: on a 16-bit target `usize::MAX` would be a
        // plausible allocation size, so a failed narrowing is a 400, never
        // a huge in-band fallback.
        let length = usize::try_from(length).map_err(|_| {
            ServeError::BadRequest("Content-Length exceeds address space".to_string())
        })?;
        let mut body = vec![0u8; length];
        std::io::Read::read_exact(reader, &mut body)
            .map_err(|e| ServeError::BadRequest(format!("truncated body: {e}")))?;
        request.body = body;
    }
    Ok(request)
}

/// Parses a strict flat JSON object whose values are all non-negative
/// integers — the only request shape `/recommend` accepts, e.g.
/// `{"user": 12, "top_k": 10}`. Returns `(key, value)` pairs in order.
pub(crate) fn parse_flat_u64_json(body: &[u8]) -> Result<Vec<(String, u64)>, ServeError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServeError::BadRequest("body is not UTF-8".to_string()))?
        .trim();
    let inner = text
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| ServeError::BadRequest("body must be a JSON object".to_string()))?
        .trim();
    let mut fields = Vec::new();
    if inner.is_empty() {
        return Ok(fields);
    }
    for pair in inner.split(',') {
        let Some((key, value)) = pair.split_once(':') else {
            return Err(ServeError::BadRequest("malformed JSON field".to_string()));
        };
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| ServeError::BadRequest("field name must be a string".to_string()))?;
        if key.is_empty() || key.contains('"') {
            return Err(ServeError::BadRequest("invalid field name".to_string()));
        }
        let value: u64 = value.trim().parse().map_err(|_| {
            ServeError::BadRequest(format!("field `{key}` must be a non-negative integer"))
        })?;
        fields.push((key.to_string(), value));
    }
    Ok(fields)
}

/// Parses a strict flat JSON object whose values are all strings — the
/// `POST /admin/reload` shape, e.g. `{"variant": "default", "path":
/// "/tmp/model.kucp"}`. Unlike [`parse_flat_u64_json`]'s naive splitting,
/// this is a character scanner: string values may contain `,`, `:`, `{`,
/// and the escapes `\"` / `\\` (keys stay escape-free identifiers).
/// Returns `(key, value)` pairs in order, with escapes resolved.
pub(crate) fn parse_flat_str_json(body: &[u8]) -> Result<Vec<(String, String)>, ServeError> {
    let bad = |msg: &str| ServeError::BadRequest(msg.to_string());
    let text = std::str::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?.trim();
    let inner = text
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| bad("body must be a JSON object"))?
        .trim();
    let mut fields = Vec::new();
    if inner.is_empty() {
        return Ok(fields);
    }
    let mut chars = inner.chars().peekable();
    // Reads one quoted string starting at the opening `"`.
    let read_string = |chars: &mut std::iter::Peekable<std::str::Chars>,
                       escapes: bool|
     -> Result<String, ServeError> {
        if chars.next() != Some('"') {
            return Err(bad("expected a string"));
        }
        let mut out = String::new();
        loop {
            match chars.next() {
                Some('"') => return Ok(out),
                Some('\\') if escapes => match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    _ => return Err(bad("unsupported escape in string value")),
                },
                Some('\\') => return Err(bad("escapes are not allowed in field names")),
                Some(c) => out.push(c),
                None => return Err(bad("unterminated string")),
            }
        }
    };
    loop {
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
        let key = read_string(&mut chars, false)?;
        if key.is_empty() {
            return Err(bad("invalid field name"));
        }
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
        if chars.next() != Some(':') {
            return Err(bad("malformed JSON field"));
        }
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
        let value = read_string(&mut chars, true)?;
        fields.push((key, value));
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
        match chars.next() {
            Some(',') => {}
            None => return Ok(fields),
            Some(_) => return Err(bad("malformed JSON object")),
        }
    }
}

/// Writes a complete HTTP/1.1 response with `Connection: close`.
pub(crate) fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Escapes a string for inclusion inside a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<HttpRequest, ServeError> {
        http_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse("POST /recommend HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\n{\"user\": 3}")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/recommend");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"{\"user\": 3}");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage_request_line() {
        assert!(matches!(parse("garbage\r\n\r\n"), Err(ServeError::BadRequest(_))));
    }

    #[test]
    fn rejects_eof_mid_request_line() {
        // A peer that disconnects before the first `\n` must not have its
        // truncated bytes parsed as a complete request line.
        let err = parse("GET /healthz HTTP/1.1").unwrap_err();
        assert!(matches!(&err, ServeError::BadRequest(m) if m.contains("mid-line")), "{err:?}");
    }

    #[test]
    fn rejects_eof_mid_headers() {
        // Headers cut before the blank terminator line: also a 400, not a
        // header-less request.
        let err = parse("POST /recommend HTTP/1.1\r\nHost: x\r\nContent-Le").unwrap_err();
        assert!(matches!(&err, ServeError::BadRequest(m) if m.contains("mid-line")), "{err:?}");
        let err = parse("GET /healthz HTTP/1.1\r\n").unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)), "missing blank line must not parse");
    }

    #[test]
    fn rejects_oversized_body() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(parse(&raw), Err(ServeError::BadRequest(_))));
    }

    #[test]
    fn rejects_truncated_body() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(matches!(parse(raw), Err(ServeError::BadRequest(_))));
    }

    #[test]
    fn flat_json_round_trip() {
        let fields = parse_flat_u64_json(br#"{"user": 12, "top_k": 10}"#).unwrap();
        assert_eq!(fields, vec![("user".to_string(), 12), ("top_k".to_string(), 10)]);
    }

    #[test]
    fn flat_json_rejects_non_integers() {
        assert!(parse_flat_u64_json(br#"{"user": "three"}"#).is_err());
        assert!(parse_flat_u64_json(br#"{"user": -1}"#).is_err());
        assert!(parse_flat_u64_json(br#"{"user": 1.5}"#).is_err());
        assert!(parse_flat_u64_json(b"[1, 2]").is_err());
        assert!(parse_flat_u64_json(b"not json").is_err());
    }

    #[test]
    fn flat_json_accepts_empty_object() {
        assert_eq!(parse_flat_u64_json(b"{}").unwrap(), vec![]);
    }

    #[test]
    fn flat_str_json_round_trip() {
        let fields =
            parse_flat_str_json(br#"{"variant": "default", "path": "/tmp/model.kucp"}"#).unwrap();
        assert_eq!(
            fields,
            vec![
                ("variant".to_string(), "default".to_string()),
                ("path".to_string(), "/tmp/model.kucp".to_string()),
            ]
        );
    }

    #[test]
    fn flat_str_json_values_may_contain_separators_and_escapes() {
        // Paths with ':' and ',' must survive — the very thing the naive
        // u64 splitter cannot handle.
        let fields = parse_flat_str_json(br#"{"path": "C:\\data,models\\a \"b\".kucp"}"#).unwrap();
        assert_eq!(fields, vec![("path".to_string(), r#"C:\data,models\a "b".kucp"#.to_string())]);
    }

    #[test]
    fn flat_str_json_rejects_malformed_input() {
        assert!(parse_flat_str_json(br#"{"variant": 3}"#).is_err(), "non-string value");
        assert!(parse_flat_str_json(br#"{"variant": "a"#).is_err(), "unterminated object");
        assert!(parse_flat_str_json(br#"{"a": "b" "c": "d"}"#).is_err(), "missing comma");
        assert!(parse_flat_str_json(br#"{"": "x"}"#).is_err(), "empty key");
        assert!(parse_flat_str_json(br#"{"a\"b": "x"}"#).is_err(), "escaped key");
        assert!(parse_flat_str_json(br#"{"a": "\n"}"#).is_err(), "unsupported escape");
        assert!(parse_flat_str_json(b"[]").is_err(), "array");
        assert!(parse_flat_str_json(b"junk").is_err(), "not json");
        assert_eq!(parse_flat_str_json(b"{}").unwrap(), vec![]);
    }

    #[test]
    fn response_has_content_length_and_close() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", "{\"ok\":true}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn content_length_at_usize_max_is_rejected_not_allocated() {
        // Regression: this used to be `usize::try_from(length).unwrap_or(usize::MAX)`,
        // which on conversion failure would attempt a usize::MAX-byte vec.
        // The 64KB cap fires first here, but the conversion itself must
        // also be checked, never saturating.
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", u64::MAX);
        assert!(matches!(parse(&raw), Err(ServeError::BadRequest(_))));
    }

    #[test]
    fn write_to_stalled_reader_errors_within_timeout() {
        // Regression for the missing write timeout: a client that sends a
        // request and then never reads the response used to pin the handler
        // thread in write() forever. With a write timeout set, writing a
        // response large enough to overflow the socket buffers must fail
        // within bounded time instead of hanging.
        use std::net::{TcpListener, TcpStream};
        use std::time::{Duration, Instant};

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // The peer connects and then deliberately never reads.
        let stalled_peer = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        server_side.set_write_timeout(Some(Duration::from_millis(200))).unwrap();

        let big_body = "x".repeat(16 * 1024 * 1024);
        let started = Instant::now();
        let result = write_response(&mut server_side, 200, "text/plain", &big_body);
        let elapsed = started.elapsed();
        assert!(result.is_err(), "writing into a full buffer must time out");
        assert!(elapsed < Duration::from_secs(10), "write must give up quickly, took {elapsed:?}");
        drop(stalled_peer);
    }
}
