//! Versioned model registry: zero-downtime hot-swap and deterministic
//! weighted A/B routing between [`ScoreService`] variants.
//!
//! The registry is the serving layer's single source of truth for *which
//! model scores a request*. Each **variant** (an A/B arm, e.g. `"control"`
//! vs `"treatment"`) holds one atomically swappable slot with the current
//! [`PinnedModel`] — an immutable `(variant, name, version, service)`
//! binding. [`ModelRegistry::reload`] publishes a new service into a slot
//! under a slot-local write lock held only for the pointer swap; readers
//! ([`ModelRegistry::pin`]) clone the `Arc` out and never observe a torn
//! state. In-flight batches keep scoring on the `PinnedModel` they pinned
//! at dispatch, so a swap is zero-downtime by construction: old and new
//! versions overlap until the last old-pinned batch drains.
//!
//! **Version numbers are global across variants** (one shared counter), so
//! a `model_version` in a response or a cache key uniquely identifies one
//! `(variant, generation)` — two variants can never collide on a version.
//!
//! **Routing** is a pure function `(seed, user id, weights) → variant`
//! ([`route_variant`]): a SplitMix64-finalized hash of the user id picks a
//! point in the cumulative weight distribution. No state, no RNG — the
//! assignment is bitwise-stable across threads, restarts, and machines,
//! which is what makes A/B bucketing reproducible and testable.
//!
//! **Lock discipline**: the registry owns exactly one lock kind (the
//! per-variant slot `RwLock`), acquires at most one at a time, and never
//! calls into graph or cache code while holding it. A reload therefore
//! cannot interact with `kucnet-dynamic`'s tick mutex — see DESIGN.md §15.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kucnet_graph::UserId;
use parking_lot::RwLock;

use crate::cache::saturating_inc;
use crate::metrics::LatencyHistogram;
use crate::ScoreService;

/// An immutable binding of one model generation to its A/B variant: the
/// unit a batch pins at dispatch and scores on until it drains.
pub struct PinnedModel {
    variant: usize,
    name: Arc<str>,
    version: u64,
    quantized: bool,
    service: Arc<dyn ScoreService>,
}

impl PinnedModel {
    /// Index of the variant this model is (or was) published under.
    pub fn variant(&self) -> usize {
        self.variant
    }

    /// The variant name (shared handle, cheap to clone into replies).
    pub fn name(&self) -> &Arc<str> {
        &self.name
    }

    /// Globally unique model version (monotonic across all variants).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether this generation serves the quantized (i8) scoring path.
    /// Stamped into the pin — never mutated — so a precision toggle is a
    /// republish under a **new version**, and every cache entry (subgraph
    /// and `UserState` alike) keyed by the old version goes stale with it.
    pub fn quantized(&self) -> bool {
        self.quantized
    }

    /// The scoring service of this generation.
    pub fn service(&self) -> &Arc<dyn ScoreService> {
        &self.service
    }
}

/// One A/B arm: its current model slot, routing weight, and counters.
struct VariantState {
    name: String,
    weight: AtomicU64,
    slot: RwLock<Arc<PinnedModel>>,
    requests: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    latency: LatencyHistogram,
}

/// Versioned, hot-swappable model store with weighted A/B routing.
///
/// Build one with [`ModelRegistry::new`] + [`ModelRegistry::register`]
/// (requires `&mut self`, so registration finishes before the registry is
/// shared), then wrap it in an `Arc` and hand it to
/// `Server::start_full`. All runtime operations ([`reload`], [`pin`],
/// [`set_weights`]) take `&self`.
///
/// [`reload`]: ModelRegistry::reload
/// [`pin`]: ModelRegistry::pin
/// [`set_weights`]: ModelRegistry::set_weights
pub struct ModelRegistry {
    seed: u64,
    n_users: usize,
    n_items: usize,
    next_version: AtomicU64,
    swaps_total: AtomicU64,
    variants: Vec<VariantState>,
}

impl ModelRegistry {
    /// Creates an empty registry whose A/B bucketing is seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            n_users: 0,
            n_items: 0,
            next_version: AtomicU64::new(0),
            swaps_total: AtomicU64::new(0),
            variants: Vec::new(),
        }
    }

    /// A single-variant registry (`"default"`, weight 100) around `service`
    /// — what [`Server::start`](crate::Server::start) wraps a plain service
    /// in.
    pub fn single(service: Arc<dyn ScoreService>, seed: u64) -> Self {
        let mut registry = Self::new(seed);
        // audit: allow(no-panic) — the first registration into an empty registry cannot fail
        registry.register("default", 100, service).expect("first registration is infallible");
        registry
    }

    /// Registers a new variant at construction time. Fails on a duplicate
    /// name or a user/item-space mismatch with already-registered variants
    /// (every variant must score the same id spaces, or routing would
    /// change the meaning of a request).
    pub fn register(
        &mut self,
        name: &str,
        weight: u64,
        service: Arc<dyn ScoreService>,
    ) -> Result<(), String> {
        if name.is_empty() {
            return Err("variant name must be non-empty".to_string());
        }
        if self.variants.iter().any(|v| v.name == name) {
            return Err(format!("variant `{name}` is already registered"));
        }
        self.check_dims(&service)?;
        if self.variants.is_empty() {
            self.n_users = service.n_users();
            self.n_items = service.n_items();
        }
        if service.supports_quantized() {
            // Quantize the master weights at load time so both precisions are
            // carried by the pin from the start; serving still begins on f32.
            service.prepare_quantized();
        }
        let variant = self.variants.len();
        let version = self.next_version.fetch_add(1, Ordering::Relaxed) + 1;
        let pinned = Arc::new(PinnedModel {
            variant,
            name: Arc::from(name),
            version,
            quantized: false,
            service,
        });
        self.variants.push(VariantState {
            name: name.to_string(),
            weight: AtomicU64::new(weight),
            slot: RwLock::new(pinned),
            requests: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
        });
        Ok(())
    }

    fn check_dims(&self, service: &Arc<dyn ScoreService>) -> Result<(), String> {
        if self.variants.is_empty() {
            return Ok(());
        }
        if service.n_users() != self.n_users || service.n_items() != self.n_items {
            return Err(format!(
                "model dimensions mismatch: registry serves {}x{} (users x items), \
                 candidate is {}x{}",
                self.n_users,
                self.n_items,
                service.n_users(),
                service.n_items()
            ));
        }
        Ok(())
    }

    /// Number of registered variants.
    pub fn len(&self) -> usize {
        self.variants.len()
    }

    /// True when no variant has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }

    /// Users every registered model scores.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Items every registered model scores.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// The A/B bucketing seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total successful [`reload`](ModelRegistry::reload) swaps so far.
    pub fn swaps_total(&self) -> u64 {
        self.swaps_total.load(Ordering::Relaxed)
    }

    /// Current `(name, weight)` of every variant, in registration order.
    pub fn weights(&self) -> Vec<(String, u64)> {
        self.variants.iter().map(|v| (v.name.clone(), v.weight.load(Ordering::Relaxed))).collect()
    }

    /// Atomically publishes `service` as the new generation of variant
    /// `name` and returns its globally unique version. Dimension-checked
    /// against the registry's id spaces. The slot write lock is held only
    /// for the pointer swap — never across any graph, cache, or scoring
    /// call — so a reload can neither block nor deadlock against in-flight
    /// batches or a dynamic `refresh_tick`.
    pub fn reload(&self, name: &str, service: Arc<dyn ScoreService>) -> Result<u64, String> {
        let variant = self
            .variants
            .iter()
            .position(|v| v.name == name)
            .ok_or_else(|| format!("unknown variant `{name}`"))?;
        self.check_dims(&service)?;
        // Re-quantize the incoming weights outside any lock, and keep the
        // variant's precision choice across the swap when the new service can
        // honor it (a service without a quantized path falls back to f32).
        let quantized = if service.supports_quantized() {
            service.prepare_quantized() && self.variants[variant].slot.read().quantized
        } else {
            false
        };
        let version = self.next_version.fetch_add(1, Ordering::Relaxed) + 1;
        let pinned =
            Arc::new(PinnedModel { variant, name: Arc::from(name), version, quantized, service });
        *self.variants[variant].slot.write() = pinned;
        saturating_inc(&self.swaps_total);
        Ok(version)
    }

    /// Switches variant `name` between the f32 and quantized scoring paths
    /// and returns the version now live. A toggle republishes the *same*
    /// service under a **new global version** (taken from the shared
    /// counter), so every `CacheVersion{model, graph}`-stamped entry —
    /// subgraphs and precomputed `UserState`s alike — keyed under the old
    /// version goes stale and is rebuilt for the new precision. Setting the
    /// flag to its current value is a no-op that returns the live version
    /// unchanged. Not counted in `swaps_total`: the model generation did not
    /// change, only its execution path. Fails for an unknown variant or when
    /// asking for quantized serving from a service without a quantized path.
    pub fn set_quantized(&self, name: &str, on: bool) -> Result<u64, String> {
        let variant = self
            .variants
            .iter()
            .position(|v| v.name == name)
            .ok_or_else(|| format!("unknown variant `{name}`"))?;
        let current = Arc::clone(&self.variants[variant].slot.read());
        if current.quantized == on {
            return Ok(current.version);
        }
        if on && !current.service.supports_quantized() {
            return Err(format!("variant `{name}` has no quantized scoring path"));
        }
        if on {
            // Idempotent and usually a cached no-op (prepared at load), but a
            // guard in case the service dropped its tables since.
            current.service.prepare_quantized();
        }
        let version = self.next_version.fetch_add(1, Ordering::Relaxed) + 1;
        let pinned = Arc::new(PinnedModel {
            variant: current.variant,
            name: Arc::clone(&current.name),
            version,
            quantized: on,
            service: Arc::clone(&current.service),
        });
        *self.variants[variant].slot.write() = pinned;
        Ok(version)
    }

    /// Atomically applies a batch of precision toggles: every name must be a
    /// registered variant and every `on` request must target a service with
    /// a quantized path, or nothing is changed (same all-or-nothing contract
    /// as [`set_weights`](ModelRegistry::set_weights)).
    pub fn set_quantized_many(&self, pairs: &[(String, bool)]) -> Result<(), String> {
        for (name, on) in pairs {
            let variant = self
                .variants
                .iter()
                .position(|v| v.name == *name)
                .ok_or_else(|| format!("unknown variant `{name}`"))?;
            if *on && !self.variants[variant].slot.read().service.supports_quantized() {
                return Err(format!("variant `{name}` has no quantized scoring path"));
            }
        }
        for (name, on) in pairs {
            self.set_quantized(name, *on)?;
        }
        Ok(())
    }

    /// Current `(name, quantized)` of every variant, in registration order.
    pub fn quantized_flags(&self) -> Vec<(String, bool)> {
        self.variants.iter().map(|v| (v.name.clone(), v.slot.read().quantized)).collect()
    }

    /// Replaces the routing weights. Every name must be a registered
    /// variant; names absent from `pairs` keep their current weight. The
    /// update is applied only after all names validate, so a typo cannot
    /// leave the split half-changed.
    pub fn set_weights(&self, pairs: &[(String, u64)]) -> Result<(), String> {
        let mut updates = Vec::with_capacity(pairs.len());
        for (name, weight) in pairs {
            let idx = self
                .variants
                .iter()
                .position(|v| v.name == *name)
                .ok_or_else(|| format!("unknown variant `{name}`"))?;
            updates.push((idx, *weight));
        }
        for (idx, weight) in updates {
            self.variants[idx].weight.store(weight, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Pins the current generation of every variant plus the current
    /// weights — one consistent routing table for a batch. Each slot's read
    /// guard is dropped immediately after the `Arc` clone, so a pin never
    /// blocks a concurrent reload for longer than a pointer copy.
    pub fn pin(&self) -> RegistryPin {
        let models: Vec<Arc<PinnedModel>> =
            self.variants.iter().map(|v| Arc::clone(&v.slot.read())).collect();
        let weights: Vec<u64> =
            self.variants.iter().map(|v| v.weight.load(Ordering::Relaxed)).collect();
        RegistryPin { seed: self.seed, weights, models }
    }

    /// Counts one answered request for variant `idx`.
    pub fn record_request(&self, idx: usize) {
        if let Some(v) = self.variants.get(idx) {
            saturating_inc(&v.requests);
        }
    }

    /// Records one end-to-end latency observation for variant `idx`.
    pub fn record_latency_us(&self, idx: usize, micros: u64) {
        if let Some(v) = self.variants.get(idx) {
            v.latency.record(micros);
        }
    }

    /// Counts one subgraph-cache outcome (`hit`/miss) for variant `idx`.
    pub fn record_cache(&self, idx: usize, hit: bool) {
        if let Some(v) = self.variants.get(idx) {
            saturating_inc(if hit { &v.cache_hits } else { &v.cache_misses });
        }
    }

    /// Renders the registry's `/metrics` lines: swap count plus per-variant
    /// weight, live model version, request count, cache hit/miss split, and
    /// latency percentiles, in the same flat `name value` style as
    /// [`ServeMetrics::render`](crate::ServeMetrics::render).
    pub fn render_metrics(&self) -> String {
        let mut out = String::with_capacity(256);
        let mut line = |name: String, value: String| {
            out.push_str(&name);
            out.push(' ');
            out.push_str(&value);
            out.push('\n');
        };
        line("kucnet_model_swaps_total".to_string(), self.swaps_total().to_string());
        line("kucnet_variants".to_string(), self.variants.len().to_string());
        for v in &self.variants {
            let prefix = format!("kucnet_variant_{}", v.name);
            let (version, quantized) = {
                let slot = v.slot.read();
                (slot.version, slot.quantized)
            };
            let hits = v.cache_hits.load(Ordering::Relaxed);
            let misses = v.cache_misses.load(Ordering::Relaxed);
            let total = hits.saturating_add(misses);
            let hit_rate = if total == 0 { 0.0 } else { hits as f64 / total as f64 };
            line(format!("{prefix}_weight"), v.weight.load(Ordering::Relaxed).to_string());
            line(format!("{prefix}_model_version"), version.to_string());
            line(format!("{prefix}_quantized"), u64::from(quantized).to_string());
            line(format!("{prefix}_requests"), v.requests.load(Ordering::Relaxed).to_string());
            line(format!("{prefix}_cache_hits"), hits.to_string());
            line(format!("{prefix}_cache_misses"), misses.to_string());
            line(format!("{prefix}_cache_hit_rate"), format!("{hit_rate:.6}"));
            line(format!("{prefix}_latency_p50_us"), v.latency.quantile_us(0.50).to_string());
            line(format!("{prefix}_latency_p95_us"), v.latency.quantile_us(0.95).to_string());
        }
        out
    }
}

/// A consistent point-in-time view of the registry: one [`PinnedModel`] per
/// variant plus the weights, captured once per batch. Routing through the
/// pin guarantees every request in the batch sees the same generation even
/// if a reload or weight change lands mid-batch.
pub struct RegistryPin {
    seed: u64,
    weights: Vec<u64>,
    models: Vec<Arc<PinnedModel>>,
}

impl RegistryPin {
    /// The pinned models, indexed by variant.
    pub fn models(&self) -> &[Arc<PinnedModel>] {
        &self.models
    }

    /// Deterministically routes `user` to a variant index under the pinned
    /// weights (see [`route_variant`]).
    pub fn route(&self, user: UserId) -> usize {
        route_variant(self.seed, user.0, &self.weights)
    }

    /// The pinned model `user` routes to.
    pub fn model_for(&self, user: UserId) -> &Arc<PinnedModel> {
        &self.models[self.route(user)]
    }
}

/// SplitMix64 finalizer: a well-mixed 64-bit hash of `x`.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic weighted A/B bucketing: hashes `(seed, user)` onto a point
/// in the cumulative distribution of `weights` and returns the variant
/// index it lands in. A pure function — same inputs, same variant, on every
/// thread, restart, and machine. All-zero (or empty) weights route
/// everything to variant 0 so a misconfigured split degrades to "serve the
/// first variant" instead of a panic.
pub fn route_variant(seed: u64, user: u32, weights: &[u64]) -> usize {
    if weights.len() <= 1 {
        return 0;
    }
    let total = weights.iter().fold(0u64, |acc, &w| acc.saturating_add(w));
    if total == 0 {
        return 0;
    }
    let h = mix64(seed ^ (u64::from(user) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut point = h % total;
    for (idx, &w) in weights.iter().enumerate() {
        if point < w {
            return idx;
        }
        point -= w;
    }
    weights.len() - 1
}

/// Builds a fresh [`ScoreService`] from a checkpoint path on behalf of
/// `POST /admin/reload`. The serving library stays model-agnostic: a
/// deployment supplies a loader that knows its config and CKG (e.g.
/// `KucNet::new` + `load_params`), and the server wires HTTP reloads
/// through it into [`ModelRegistry::reload`].
pub trait ModelLoader: Send + Sync {
    /// Loads a replacement service for `variant` from `path`. The returned
    /// service must score the registry's user/item spaces; a mismatch is
    /// rejected at [`ModelRegistry::reload`] time.
    fn load(&self, variant: &str, path: &str) -> Result<Arc<dyn ScoreService>, String>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use kucnet_graph::{LayeredGraph, NodeId};

    struct Stub {
        tag: u32,
        n_users: usize,
        n_items: usize,
    }

    impl ScoreService for Stub {
        fn name(&self) -> String {
            format!("stub{}", self.tag)
        }

        fn n_users(&self) -> usize {
            self.n_users
        }

        fn n_items(&self) -> usize {
            self.n_items
        }

        fn build_user_graph(&self, user: UserId) -> Arc<LayeredGraph> {
            Arc::new(LayeredGraph {
                root: NodeId(user.0),
                node_lists: vec![vec![NodeId(user.0)]],
                layers: vec![],
            })
        }

        fn score_graph(&self, graph: &LayeredGraph) -> Vec<f32> {
            let u = graph.root.0 as usize + self.tag as usize;
            (0..self.n_items).map(|i| ((u * 31 + i * 17) % 97) as f32).collect()
        }
    }

    fn stub(tag: u32) -> Arc<dyn ScoreService> {
        Arc::new(Stub { tag, n_users: 16, n_items: 8 })
    }

    /// A stub whose quantized path exists; counts `prepare_quantized` calls.
    struct QuantStub {
        inner: Stub,
        prepares: AtomicU64,
    }

    impl ScoreService for QuantStub {
        fn name(&self) -> String {
            self.inner.name()
        }

        fn n_users(&self) -> usize {
            self.inner.n_users()
        }

        fn n_items(&self) -> usize {
            self.inner.n_items()
        }

        fn build_user_graph(&self, user: UserId) -> Arc<LayeredGraph> {
            self.inner.build_user_graph(user)
        }

        fn score_graph(&self, graph: &LayeredGraph) -> Vec<f32> {
            self.inner.score_graph(graph)
        }

        fn supports_quantized(&self) -> bool {
            true
        }

        fn prepare_quantized(&self) -> bool {
            saturating_inc(&self.prepares);
            true
        }
    }

    fn quant_stub(tag: u32) -> Arc<QuantStub> {
        Arc::new(QuantStub {
            inner: Stub { tag, n_users: 16, n_items: 8 },
            prepares: AtomicU64::new(0),
        })
    }

    #[test]
    fn versions_are_global_and_monotonic_across_variants() {
        let mut r = ModelRegistry::new(7);
        r.register("control", 90, stub(0)).unwrap();
        r.register("treatment", 10, stub(1)).unwrap();
        let pin = r.pin();
        assert_eq!(pin.models()[0].version(), 1);
        assert_eq!(pin.models()[1].version(), 2);
        let v3 = r.reload("control", stub(2)).unwrap();
        assert_eq!(v3, 3);
        let v4 = r.reload("treatment", stub(3)).unwrap();
        assert_eq!(v4, 4);
        assert_eq!(r.swaps_total(), 2);
    }

    #[test]
    fn duplicate_and_unknown_variants_are_rejected() {
        let mut r = ModelRegistry::new(0);
        r.register("a", 1, stub(0)).unwrap();
        assert!(r.register("a", 1, stub(1)).is_err());
        assert!(r.register("", 1, stub(1)).is_err());
        assert!(r.reload("nope", stub(1)).is_err());
        assert!(r.set_weights(&[("nope".to_string(), 5)]).is_err());
    }

    #[test]
    fn dimension_mismatch_is_rejected_on_register_and_reload() {
        let mut r = ModelRegistry::new(0);
        r.register("a", 1, stub(0)).unwrap();
        let wrong: Arc<dyn ScoreService> = Arc::new(Stub { tag: 9, n_users: 3, n_items: 8 });
        assert!(r.register("b", 1, Arc::clone(&wrong)).is_err());
        assert!(r.reload("a", wrong).is_err());
        assert_eq!(r.swaps_total(), 0, "a failed reload must not count as a swap");
    }

    #[test]
    fn reload_does_not_disturb_an_existing_pin() {
        let mut r = ModelRegistry::new(0);
        r.register("a", 1, stub(0)).unwrap();
        let pin = r.pin();
        r.reload("a", stub(1)).unwrap();
        // The old pin still scores on the old generation.
        assert_eq!(pin.models()[0].version(), 1);
        assert_eq!(pin.models()[0].service().name(), "stub0");
        // A fresh pin sees the new one.
        let fresh = r.pin();
        assert_eq!(fresh.models()[0].version(), 2);
        assert_eq!(fresh.models()[0].service().name(), "stub1");
    }

    #[test]
    fn routing_is_pure_and_respects_degenerate_weights() {
        for user in 0..64u32 {
            assert_eq!(route_variant(1, user, &[0, 100]), 1, "zero weight must never route");
            assert_eq!(route_variant(1, user, &[100, 0]), 0);
            assert_eq!(route_variant(1, user, &[0, 0]), 0, "all-zero weights fall back to 0");
            assert_eq!(route_variant(1, user, &[5]), 0);
            assert_eq!(route_variant(1, user, &[]), 0);
            assert_eq!(
                route_variant(9, user, &[50, 50]),
                route_variant(9, user, &[50, 50]),
                "routing must be deterministic"
            );
        }
    }

    #[test]
    fn routing_split_tracks_weights() {
        let n = 1000u32;
        let count = |weights: &[u64]| -> usize {
            (0..n).filter(|&u| route_variant(42, u, weights) == 1).count()
        };
        let half = count(&[50, 50]);
        assert!((400..=600).contains(&half), "50/50 split off: {half}/1000 to variant 1");
        let tenth = count(&[90, 10]);
        assert!((50..=160).contains(&tenth), "90/10 split off: {tenth}/1000 to variant 1");
    }

    #[test]
    fn set_weights_is_all_or_nothing() {
        let mut r = ModelRegistry::new(0);
        r.register("a", 90, stub(0)).unwrap();
        r.register("b", 10, stub(1)).unwrap();
        let err = r.set_weights(&[("a".to_string(), 0), ("zzz".to_string(), 100)]);
        assert!(err.is_err());
        assert_eq!(r.weights(), vec![("a".to_string(), 90), ("b".to_string(), 10)]);
        r.set_weights(&[("a".to_string(), 0), ("b".to_string(), 100)]).unwrap();
        assert_eq!(r.weights(), vec![("a".to_string(), 0), ("b".to_string(), 100)]);
    }

    #[test]
    fn quantized_toggle_republishes_under_a_new_version_without_counting_a_swap() {
        let qs = quant_stub(0);
        let mut r = ModelRegistry::new(0);
        r.register("a", 100, Arc::clone(&qs) as Arc<dyn ScoreService>).unwrap();
        assert_eq!(qs.prepares.load(Ordering::Relaxed), 1, "quantized at load time");
        assert!(!r.pin().models()[0].quantized(), "serving starts on f32");
        let v = r.set_quantized("a", true).unwrap();
        assert_eq!(v, 2, "a toggle takes a fresh global version");
        assert!(r.pin().models()[0].quantized());
        assert_eq!(r.set_quantized("a", true).unwrap(), 2, "no-op keeps the live version");
        assert_eq!(r.swaps_total(), 0, "a precision flip is not a model swap");
        assert_eq!(r.quantized_flags(), vec![("a".to_string(), true)]);
        let back = r.set_quantized("a", false).unwrap();
        assert_eq!(back, 3);
        assert!(!r.pin().models()[0].quantized());
    }

    #[test]
    fn quantized_toggle_rejects_services_without_a_quantized_path() {
        let mut r = ModelRegistry::new(0);
        r.register("a", 100, stub(0)).unwrap();
        assert!(r.set_quantized("a", true).is_err());
        assert_eq!(r.set_quantized("a", false).unwrap(), 1, "f32 is always allowed");
        assert!(r.set_quantized("nope", true).is_err());
    }

    #[test]
    fn reload_preserves_the_precision_flag_when_the_new_service_supports_it() {
        let mut r = ModelRegistry::new(0);
        r.register("a", 100, quant_stub(0) as Arc<dyn ScoreService>).unwrap();
        r.set_quantized("a", true).unwrap();
        r.reload("a", quant_stub(1) as Arc<dyn ScoreService>).unwrap();
        assert!(r.pin().models()[0].quantized(), "swap keeps the quantized path live");
        r.reload("a", stub(2)).unwrap();
        assert!(!r.pin().models()[0].quantized(), "f32-only service falls back to f32");
    }

    #[test]
    fn set_quantized_many_is_all_or_nothing() {
        let mut r = ModelRegistry::new(0);
        r.register("a", 50, quant_stub(0) as Arc<dyn ScoreService>).unwrap();
        r.register("b", 50, stub(1)).unwrap();
        let err = r.set_quantized_many(&[("a".to_string(), true), ("b".to_string(), true)]);
        assert!(err.is_err());
        assert_eq!(
            r.quantized_flags(),
            vec![("a".to_string(), false), ("b".to_string(), false)],
            "a rejected batch must not half-apply"
        );
        r.set_quantized_many(&[("a".to_string(), true), ("b".to_string(), false)]).unwrap();
        assert_eq!(r.quantized_flags(), vec![("a".to_string(), true), ("b".to_string(), false)]);
    }

    #[test]
    fn metrics_render_per_variant_lines() {
        let mut r = ModelRegistry::new(0);
        r.register("control", 90, stub(0)).unwrap();
        r.register("treatment", 10, stub(1)).unwrap();
        r.record_request(0);
        r.record_cache(0, true);
        r.record_cache(0, false);
        r.record_latency_us(0, 750);
        r.reload("treatment", stub(2)).unwrap();
        let body = r.render_metrics();
        for key in [
            "kucnet_model_swaps_total 1",
            "kucnet_variants 2",
            "kucnet_variant_control_weight 90",
            "kucnet_variant_control_model_version 1",
            "kucnet_variant_control_quantized 0",
            "kucnet_variant_control_requests 1",
            "kucnet_variant_control_cache_hits 1",
            "kucnet_variant_control_cache_misses 1",
            "kucnet_variant_control_cache_hit_rate 0.5",
            "kucnet_variant_control_latency_p50_us 1000",
            "kucnet_variant_treatment_model_version 3",
            "kucnet_variant_treatment_requests 0",
        ] {
            assert!(body.contains(key), "missing `{key}` in:\n{body}");
        }
    }
}
