//! The graph write path exposed through `POST /update`.
//!
//! [`GraphUpdater`] is the serve-side contract a mutable graph backend
//! (in practice `kucnet-dynamic`'s `DynamicService`) implements: append an
//! interaction or KG triple to the pending log, or run a `refresh_tick`
//! that folds the pending log into a new graph epoch. Appends are **not**
//! visible to scoring until a refresh tick commits them — that is what
//! keeps serving deterministic: every batch scores against exactly one
//! committed epoch, and epochs only advance at tick boundaries.
//!
//! The trait lives in `kucnet-serve` (not `kucnet-dynamic`) so the HTTP
//! frontend has no dependency on any particular dynamic-graph
//! implementation; static deployments simply run without an updater and
//! answer `POST /update` with 400.

use crate::ServeError;

/// Acknowledgement of one accepted append operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppendAck {
    /// Committed graph epoch at the time of the append (the append itself
    /// is pending and takes effect at the next refresh tick).
    pub epoch: u64,
    /// Pending log operations not yet folded into an epoch.
    pub pending: usize,
    /// True when the edge already existed (committed or pending) and the
    /// append was dropped as a duplicate.
    pub deduped: bool,
}

/// Acknowledgement of one completed refresh tick.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RefreshAck {
    /// The graph epoch after the tick (advances by one when anything was
    /// pending; unchanged for an empty tick).
    pub epoch: u64,
    /// Pending log operations folded into the new epoch.
    pub applied: usize,
    /// Users whose sparse PPR vector was recomputed (the dirty frontier).
    pub recomputed: usize,
    /// Users whose PPR entries actually changed; only these have their
    /// subgraph version bumped.
    pub changed_users: Vec<u32>,
    /// True when this tick compacted the delta overlay back into a fresh
    /// CSR.
    pub compacted: bool,
}

/// A mutable graph backend servicing `POST /update`.
///
/// Implementations must be internally synchronized: appends may arrive
/// concurrently from handler threads while scoring batches read the
/// committed state. See the crate docs of `kucnet-dynamic` for the
/// reference implementation and its determinism contract.
pub trait GraphUpdater: Send + Sync {
    /// Logs a user→item interaction for the next refresh tick.
    fn append_interaction(&self, user: u64, item: u64) -> Result<AppendAck, ServeError>;

    /// Logs a KG triple `(head, rel, tail)` in CKG **node-id space** (so
    /// items and entities are addressed uniformly) for the next refresh
    /// tick. `rel` is a global base relation id in `1..n_base` (relation 0
    /// is the interaction relation — use
    /// [`append_interaction`](GraphUpdater::append_interaction)).
    fn append_triple(&self, head: u64, rel: u64, tail: u64) -> Result<AppendAck, ServeError>;

    /// Folds all pending appends into a new committed graph epoch,
    /// recomputing PPR only for users on the dirty frontier.
    fn refresh_tick(&self) -> Result<RefreshAck, ServeError>;

    /// The current committed graph epoch (0 before any refresh applied
    /// anything).
    fn epoch(&self) -> u64;
}
