//! # kucnet-serve
//!
//! Online inference for a trained KUCNet model: the serving path the paper's
//! efficiency claims point at. One L-layer propagation over a user-centric
//! computation graph scores *all* candidate items for a user at once
//! (PAPER.md §IV), which is exactly the shape a low-latency candidate
//! scorer needs. This crate turns any [`ScoreService`] (in practice a
//! trained `kucnet::KucNet`, optionally restored from a `KUCP` checkpoint)
//! into an HTTP service:
//!
//! ```text
//!  HTTP conn ──► parse/validate ──► micro-batch queue ──► worker pool
//!                                      (≤ B users or          │
//!                                       flush deadline)       ▼
//!                            subgraph LRU cache ◄──── PPR-pruned layering
//!                                      │                      │
//!                                      └──── tape-free forward┘──► top-k
//! ```
//!
//! Components, each usable on its own:
//!
//! - [`SubgraphCache`] — an LRU-style user-context cache memoizing the
//!   PPR-pruned layered subgraph per user id, with hit/miss counters.
//!   Repeat requests skip pruning entirely and go straight to the forward
//!   pass.
//! - [`Batcher`] — a `std::sync::mpsc` request queue feeding a worker pool;
//!   up to `max_batch` pending users are coalesced per dispatch (duplicate
//!   users in a batch are scored once), with a configurable flush deadline.
//! - [`ServeMetrics`] / [`LatencyHistogram`] — request counters and a
//!   fixed-bucket latency histogram reporting p50/p95/p99, all with
//!   saturating arithmetic.
//! - [`Server`] — a dependency-free HTTP/1.1 frontend on
//!   `std::net::TcpListener` exposing `POST /recommend`, `GET /healthz`,
//!   and `GET /metrics`, with graceful shutdown.
//!
//! ## Example
//! ```no_run
//! use std::sync::Arc;
//! use kucnet::{KucNet, KucNetConfig, ScoreService};
//! use kucnet_datasets::{DatasetProfile, GeneratedDataset};
//! use kucnet_serve::{Server, ServeConfig};
//!
//! let data = GeneratedDataset::generate(&DatasetProfile::tiny(), 42);
//! let mut model = KucNet::new(KucNetConfig::default(), data.build_ckg(&data.interactions));
//! model.fit();
//! let service: Arc<dyn ScoreService> = Arc::new(model);
//! let handle = Server::start(service, ServeConfig::default(), "127.0.0.1:0").unwrap();
//! println!("serving on http://{}", handle.addr());
//! # handle.shutdown();
//! ```

#![warn(missing_docs)]

mod batch;
mod cache;
mod fault;
mod http;
mod metrics;
mod registry;
mod server;
mod shard;
mod update;

pub use batch::{Batcher, BatcherStats, Ranking, ScoredReply};
pub use cache::{CacheStats, CacheVersion, SubgraphCache};
pub use fault::{FaultConfig, FaultStats, FaultyService, InjectedFault};
pub use http::{http_request, HttpRequest};
pub use metrics::{LatencyHistogram, MetricsSnapshot, ServeMetrics};
pub use registry::{route_variant, ModelLoader, ModelRegistry, PinnedModel, RegistryPin};
pub use server::{Server, ServerHandle};
pub use shard::ShardRouter;
pub use update::{AppendAck, GraphUpdater, RefreshAck};

use std::time::Duration;

pub use kucnet::{ExplainOutput, ScoreService};

/// Serving-layer configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Maximum number of user subgraphs retained by the LRU cache.
    pub cache_capacity: usize,
    /// Maximum number of requests coalesced into one dispatched batch.
    pub max_batch: usize,
    /// How long the batcher waits for more requests after the first one
    /// before flushing a partial batch.
    pub flush_deadline: Duration,
    /// Number of scoring worker threads.
    pub workers: usize,
    /// Worker threads used *within* one dispatched batch to score its
    /// unique users concurrently on the shared `kucnet-par` pool. `1`
    /// scores users sequentially; results are identical for every value.
    pub batch_threads: usize,
    /// Upper bound accepted for `top_k` in requests (requests above it are
    /// rejected with 400; independently `top_k` may not exceed the item
    /// count).
    pub max_top_k: usize,
    /// How long a frontend connection waits for its scored reply before
    /// giving up with a 500.
    pub reply_timeout: Duration,
    /// Maximum concurrently open client connections; connections beyond
    /// the cap are shed immediately with 503 instead of spawning an
    /// unbounded handler thread per `TcpStream`.
    pub max_connections: usize,
    /// Maximum requests waiting in the batcher queue; submissions beyond
    /// the cap are shed with [`ServeError::Overloaded`] (503) instead of
    /// queueing without bound.
    pub max_queue_depth: usize,
    /// Per-connection socket read **and** write timeout: a client that
    /// stalls sending its request or reading its response is cut loose
    /// instead of pinning a handler thread forever.
    pub io_timeout: Duration,
    /// Seed for deterministic A/B bucketing ([`route_variant`]). Routing is
    /// a pure function of `(ab_seed, user id, weights)`, so deployments
    /// sharing a seed assign users to variants identically across restarts
    /// and replicas.
    pub ab_seed: u64,
    /// Start every variant that supports it on the quantized (i8) scoring
    /// path instead of f32. Variants without a quantized companion keep
    /// serving f32; the flag can be flipped per variant at runtime via
    /// `POST /admin/ab` (`"quant.<variant>": 0|1`).
    pub quantized: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            cache_capacity: 1024,
            max_batch: 16,
            flush_deadline: Duration::from_millis(2),
            workers: 2,
            batch_threads: 1,
            max_top_k: 1000,
            reply_timeout: Duration::from_secs(30),
            max_connections: 256,
            max_queue_depth: 1024,
            io_timeout: Duration::from_secs(10),
            ab_seed: 0x5EED_AB00,
            quantized: false,
        }
    }
}

/// Errors surfaced to serving clients; each maps onto one HTTP status.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Malformed or invalid request (HTTP 400).
    BadRequest(String),
    /// The requested user id is outside the model's user space (HTTP 404).
    UnknownUser(u64),
    /// The server is shutting down and no longer accepts work (HTTP 503).
    Unavailable,
    /// Admission control shed this request: the connection cap or the
    /// batcher queue depth is exhausted (HTTP 503). Retryable.
    Overloaded,
    /// The scoring pipeline failed or timed out (HTTP 500).
    Internal(String),
}

impl ServeError {
    /// The HTTP status code this error renders as.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadRequest(_) => 400,
            ServeError::UnknownUser(_) => 404,
            ServeError::Unavailable => 503,
            ServeError::Overloaded => 503,
            ServeError::Internal(_) => 500,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::UnknownUser(u) => write!(f, "unknown user {u}"),
            ServeError::Unavailable => write!(f, "server is shutting down"),
            ServeError::Overloaded => write!(f, "server overloaded; retry later"),
            ServeError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}
