//! The micro-batching request queue and scoring worker pool.
//!
//! Requests enter a `std::sync::mpsc` channel. A dedicated batcher thread
//! coalesces up to `max_batch` pending requests into one dispatch — waiting
//! at most `flush_deadline` after the first request of a batch — and hands
//! the batch to a worker pool. Workers group a batch by user id, so a burst
//! of requests for the same user costs a single subgraph build + forward
//! pass, and every other user in the batch reuses the warm parameter state
//! back-to-back.
//!
//! KUCNet's forward pass already "batches" across candidate items: one
//! L-layer propagation scores every item for a user (PAPER.md §IV). The
//! batcher adds the request-level half: queueing amortization and duplicate
//! collapsing under concurrent load.
//!
//! ## Fault containment
//!
//! Because one user-centric propagation answers all of a user's candidates,
//! a single hostile subgraph would otherwise take out every job batched
//! with it. Per-user scoring therefore runs under
//! [`kucnet_par::par_try_map_with`] (per-item `catch_unwind`): a panic in
//! one user's build or forward pass answers *that user's* jobs with
//! [`ServeError::Internal`] while the rest of the batch still succeeds.
//! The worker that caught the panic is treated as tainted — its warm pools
//! may be torn mid-mutation — so it finishes answering its batch, exits,
//! and a supervisor thread respawns a fresh replacement (`panics_total`,
//! `workers_respawned`, `workers_alive` in [`BatcherStats`] track all of
//! it). [`Batcher::submit`] additionally sheds load with
//! [`ServeError::Overloaded`] once `max_queue_depth` jobs are pending, so
//! a stalled pool degrades into fast 503s instead of unbounded queueing.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use kucnet::GraphContext;
use kucnet_eval::top_n_indices;
use kucnet_graph::UserId;
use parking_lot::Mutex;

use crate::cache::{saturating_dec, saturating_inc, CacheVersion, SubgraphCache};
use crate::metrics::LatencyHistogram;
use crate::registry::ModelRegistry;
use crate::{ServeConfig, ServeError};

/// A ranked recommendation list: `(item id, score)` in descending score
/// order.
pub type Ranking = Vec<(u32, f32)>;

/// A scored reply with full model attribution: which A/B variant the user
/// routed to and which model generation produced the ranking. Every
/// response is attributable to exactly one `(variant, model_version)` pair
/// — during a hot-swap, replies from batches pinned before the swap carry
/// the old version and later ones the new, never a mixture.
#[derive(Clone, Debug)]
pub struct ScoredReply {
    /// Index of the variant that scored this request.
    pub variant: usize,
    /// Name of that variant (shared handle into the registry's pin).
    pub variant_name: Arc<str>,
    /// Globally unique version of the model generation that scored it.
    pub model_version: u64,
    /// The ranked items.
    pub ranking: Ranking,
}

/// One queued scoring request.
struct Job {
    user: UserId,
    top_k: usize,
    reply: mpsc::Sender<Result<ScoredReply, ServeError>>,
}

/// Counters describing batching behavior (exposed for tests and metrics).
#[derive(Clone, Copy, Debug, Default)]
pub struct BatcherStats {
    /// Batches dispatched to the worker pool.
    pub batches: u64,
    /// Individual requests across all dispatched batches.
    pub jobs: u64,
    /// Unique users actually scored (jobs minus duplicates collapsed).
    pub users_scored: u64,
    /// Scoring panics caught and converted into per-job 500s.
    pub panics_total: u64,
    /// Workers respawned after exiting tainted by a caught panic.
    pub workers_respawned: u64,
    /// Scoring workers currently alive (gauge; heals back to the
    /// configured pool size after panics).
    pub workers_alive: u64,
    /// Jobs currently queued or in flight (gauge).
    pub queue_depth: u64,
    /// Submissions shed with [`ServeError::Overloaded`] because the queue
    /// was at `max_queue_depth`.
    pub shed_total: u64,
    /// p50 of the cache-fill stage (subgraph build + `UserState`
    /// precompute on a miss), in microseconds.
    pub fill_p50_us: u64,
    /// p95 of the cache-fill stage, in microseconds.
    pub fill_p95_us: u64,
    /// p99 of the cache-fill stage, in microseconds.
    pub fill_p99_us: u64,
    /// p50 of the warm scoring stage (forward pass after the context is
    /// resident), in microseconds.
    pub warm_p50_us: u64,
    /// p95 of the warm scoring stage, in microseconds.
    pub warm_p95_us: u64,
    /// p99 of the warm scoring stage, in microseconds.
    pub warm_p99_us: u64,
}

/// Control messages for the supervisor thread.
enum Notice {
    /// A worker exited after catching a panic; spawn a replacement.
    Tainted,
    /// The batcher is shutting down; join workers and exit.
    Shutdown,
}

/// Why a worker's loop ended.
enum WorkerExit {
    /// The batch channel closed (orderly shutdown).
    Shutdown,
    /// A caught panic tainted this worker's warm state.
    Tainted,
}

/// Everything a scoring worker needs; cloneable so the supervisor can mint
/// replacement workers after a panic.
struct WorkerCtx {
    batch_rx: Arc<Mutex<mpsc::Receiver<Vec<Job>>>>,
    registry: Arc<ModelRegistry>,
    cache: Arc<SubgraphCache>,
    users_scored: Arc<AtomicU64>,
    panics_total: Arc<AtomicU64>,
    queue_depth: Arc<AtomicU64>,
    workers_alive: Arc<AtomicU64>,
    stage_fill: Arc<LatencyHistogram>,
    stage_warm: Arc<LatencyHistogram>,
    notice_tx: mpsc::Sender<Notice>,
    batch_threads: usize,
}

impl Clone for WorkerCtx {
    fn clone(&self) -> Self {
        Self {
            batch_rx: Arc::clone(&self.batch_rx),
            registry: Arc::clone(&self.registry),
            cache: Arc::clone(&self.cache),
            users_scored: Arc::clone(&self.users_scored),
            panics_total: Arc::clone(&self.panics_total),
            queue_depth: Arc::clone(&self.queue_depth),
            workers_alive: Arc::clone(&self.workers_alive),
            stage_fill: Arc::clone(&self.stage_fill),
            stage_warm: Arc::clone(&self.stage_warm),
            notice_tx: self.notice_tx.clone(),
            batch_threads: self.batch_threads,
        }
    }
}

impl WorkerCtx {
    /// Spawns one scoring worker; the `workers_alive` gauge is incremented
    /// before the thread starts and decremented when it exits. A worker
    /// that exits tainted notifies the supervisor so it can respawn.
    fn spawn(&self) -> JoinHandle<()> {
        saturating_inc(&self.workers_alive);
        let ctx = self.clone();
        std::thread::spawn(move || {
            let exit = run_worker(&ctx);
            saturating_dec(&ctx.workers_alive);
            if matches!(exit, WorkerExit::Tainted) {
                let _ = ctx.notice_tx.send(Notice::Tainted);
            }
        })
    }
}

/// The micro-batching queue: accepts requests, coalesces them, and scores
/// them on a self-healing worker pool over a shared [`SubgraphCache`].
pub struct Batcher {
    queue: Mutex<Option<mpsc::Sender<Job>>>,
    reply_timeout: Duration,
    max_queue_depth: u64,
    queue_depth: Arc<AtomicU64>,
    shed_total: Arc<AtomicU64>,
    batches: Arc<AtomicU64>,
    jobs: Arc<AtomicU64>,
    users_scored: Arc<AtomicU64>,
    panics_total: Arc<AtomicU64>,
    workers_respawned: Arc<AtomicU64>,
    workers_alive: Arc<AtomicU64>,
    stage_fill: Arc<LatencyHistogram>,
    stage_warm: Arc<LatencyHistogram>,
    shutting_down: Arc<AtomicBool>,
    notice_tx: Mutex<Option<mpsc::Sender<Notice>>>,
    batcher_thread: Mutex<Option<JoinHandle<()>>>,
    supervisor_thread: Mutex<Option<JoinHandle<()>>>,
}

impl Batcher {
    /// Starts the batcher thread, `config.workers` scoring workers over the
    /// model `registry` (memoizing pruned subgraphs in `cache`, keyed by
    /// `(model version, graph version)`), and a supervisor that respawns
    /// workers which die catching a scoring panic. Workers pin the registry
    /// once per batch, so a hot-swap landing mid-batch never mixes model
    /// generations within a batch.
    pub fn start(
        registry: Arc<ModelRegistry>,
        cache: Arc<SubgraphCache>,
        config: &ServeConfig,
    ) -> Self {
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let (batch_tx, batch_rx) = mpsc::channel::<Vec<Job>>();
        let (notice_tx, notice_rx) = mpsc::channel::<Notice>();
        let batch_rx = Arc::new(Mutex::new(batch_rx));

        let batches = Arc::new(AtomicU64::new(0));
        let jobs = Arc::new(AtomicU64::new(0));
        let users_scored = Arc::new(AtomicU64::new(0));
        let panics_total = Arc::new(AtomicU64::new(0));
        let workers_respawned = Arc::new(AtomicU64::new(0));
        let workers_alive = Arc::new(AtomicU64::new(0));
        let queue_depth = Arc::new(AtomicU64::new(0));
        let stage_fill = Arc::new(LatencyHistogram::new());
        let stage_warm = Arc::new(LatencyHistogram::new());
        let shutting_down = Arc::new(AtomicBool::new(false));

        let max_batch = config.max_batch.max(1);
        let flush = config.flush_deadline;
        let b_batches = Arc::clone(&batches);
        let b_jobs = Arc::clone(&jobs);
        let batcher_thread = std::thread::spawn(move || {
            run_batcher(&job_rx, &batch_tx, max_batch, flush, &b_batches, &b_jobs);
        });

        let ctx = WorkerCtx {
            batch_rx,
            registry,
            cache,
            users_scored: Arc::clone(&users_scored),
            panics_total: Arc::clone(&panics_total),
            queue_depth: Arc::clone(&queue_depth),
            workers_alive: Arc::clone(&workers_alive),
            stage_fill: Arc::clone(&stage_fill),
            stage_warm: Arc::clone(&stage_warm),
            notice_tx: notice_tx.clone(),
            batch_threads: config.batch_threads.max(1),
        };
        let worker_threads: Vec<JoinHandle<()>> =
            (0..config.workers.max(1)).map(|_| ctx.spawn()).collect();

        let s_respawned = Arc::clone(&workers_respawned);
        let s_shutting_down = Arc::clone(&shutting_down);
        let supervisor_thread = std::thread::spawn(move || {
            run_supervisor(&notice_rx, &ctx, worker_threads, &s_respawned, &s_shutting_down);
        });

        Self {
            queue: Mutex::new(Some(job_tx)),
            reply_timeout: config.reply_timeout,
            max_queue_depth: config.max_queue_depth.max(1) as u64,
            queue_depth,
            shed_total: Arc::new(AtomicU64::new(0)),
            batches,
            jobs,
            users_scored,
            panics_total,
            workers_respawned,
            workers_alive,
            stage_fill,
            stage_warm,
            shutting_down,
            notice_tx: Mutex::new(Some(notice_tx)),
            batcher_thread: Mutex::new(Some(batcher_thread)),
            supervisor_thread: Mutex::new(Some(supervisor_thread)),
        }
    }

    /// Submits one request and blocks until its ranking is scored (or the
    /// queue shut down / shed the request / the reply timed out). The reply
    /// names the A/B variant and model version that produced it.
    pub fn submit(&self, user: UserId, top_k: usize) -> Result<ScoredReply, ServeError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        {
            let queue = self.queue.lock();
            let Some(tx) = queue.as_ref() else {
                return Err(ServeError::Unavailable);
            };
            // Admission control: claim a queue slot atomically, or shed.
            let admitted = self
                .queue_depth
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |depth| {
                    (depth < self.max_queue_depth).then(|| depth.saturating_add(1))
                })
                .is_ok();
            if !admitted {
                saturating_inc(&self.shed_total);
                return Err(ServeError::Overloaded);
            }
            if tx.send(Job { user, top_k, reply: reply_tx }).is_err() {
                saturating_dec(&self.queue_depth);
                return Err(ServeError::Unavailable);
            }
        }
        match reply_rx.recv_timeout(self.reply_timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                Err(ServeError::Internal("scoring timed out".to_string()))
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::Unavailable),
        }
    }

    /// Snapshot of batching, fault, and admission counters.
    pub fn stats(&self) -> BatcherStats {
        BatcherStats {
            batches: self.batches.load(Ordering::Relaxed),
            jobs: self.jobs.load(Ordering::Relaxed),
            users_scored: self.users_scored.load(Ordering::Relaxed),
            panics_total: self.panics_total.load(Ordering::Relaxed),
            workers_respawned: self.workers_respawned.load(Ordering::Relaxed),
            workers_alive: self.workers_alive.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            shed_total: self.shed_total.load(Ordering::Relaxed),
            fill_p50_us: self.stage_fill.quantile_us(0.50),
            fill_p95_us: self.stage_fill.quantile_us(0.95),
            fill_p99_us: self.stage_fill.quantile_us(0.99),
            warm_p50_us: self.stage_warm.quantile_us(0.50),
            warm_p95_us: self.stage_warm.quantile_us(0.95),
            warm_p99_us: self.stage_warm.quantile_us(0.99),
        }
    }

    /// Stops accepting work, drains in-flight batches, and joins every
    /// thread (including respawned workers). Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        // Respawns stop first, so a worker dying during drain stays dead.
        self.shutting_down.store(true, Ordering::SeqCst);
        // Dropping the job sender ends the batcher loop, which drops the
        // batch sender, which ends every worker.
        self.queue.lock().take();
        if let Some(handle) = self.batcher_thread.lock().take() {
            let _ = handle.join();
        }
        // Wake the supervisor; it joins all current workers before exiting.
        if let Some(tx) = self.notice_tx.lock().take() {
            let _ = tx.send(Notice::Shutdown);
        }
        if let Some(handle) = self.supervisor_thread.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Coalesces queued jobs into batches of at most `max_batch`, flushing a
/// partial batch `flush` after its first job arrived. `batches`/`jobs` are
/// counted only after a successful dispatch: a failed send at shutdown must
/// not inflate stats with a batch no worker ever saw.
fn run_batcher(
    job_rx: &mpsc::Receiver<Job>,
    batch_tx: &mpsc::Sender<Vec<Job>>,
    max_batch: usize,
    flush: Duration,
    batches: &AtomicU64,
    jobs: &AtomicU64,
) {
    loop {
        // Block for the batch's first job; an error means shutdown.
        let first = match job_rx.recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let mut batch = vec![first];
        let deadline = Instant::now() + flush;
        let mut disconnected = false;
        while batch.len() < max_batch {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match job_rx.recv_timeout(remaining) {
                Ok(job) => batch.push(job),
                Err(mpsc::RecvTimeoutError::Timeout) => break,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        let dispatched = batch.len();
        if batch_tx.send(batch).is_err() {
            return;
        }
        saturating_inc(batches);
        for _ in 0..dispatched {
            saturating_inc(jobs);
        }
        if disconnected {
            return;
        }
    }
}

/// Supervisor loop: respawn workers that exited tainted, join everything on
/// shutdown. Finished handles are reaped as replacements are spawned so the
/// handle list stays bounded by the pool size plus in-flight deaths.
fn run_supervisor(
    notice_rx: &mpsc::Receiver<Notice>,
    ctx: &WorkerCtx,
    mut workers: Vec<JoinHandle<()>>,
    respawned: &AtomicU64,
    shutting_down: &AtomicBool,
) {
    loop {
        match notice_rx.recv() {
            Ok(Notice::Tainted) => {
                let (finished, live): (Vec<_>, Vec<_>) =
                    workers.into_iter().partition(|h| h.is_finished());
                for handle in finished {
                    let _ = handle.join();
                }
                workers = live;
                if shutting_down.load(Ordering::SeqCst) {
                    continue; // draining: the pool is allowed to shrink now
                }
                saturating_inc(respawned);
                workers.push(ctx.spawn());
            }
            Ok(Notice::Shutdown) | Err(_) => break,
        }
    }
    for handle in workers {
        let _ = handle.join();
    }
}

/// Worker loop: pull a batch, score each unique user once, answer all jobs.
/// Unique users within a batch are scored concurrently on the shared
/// `kucnet-par` pool (`batch_threads` wide) in ascending user order, so
/// replies are independent of both HashMap iteration order and scheduling.
///
/// Scoring runs under per-user `catch_unwind`: a panicking user costs that
/// user's jobs a 500 while the rest of the batch succeeds. Any caught panic
/// taints this worker (its warm pools may hold torn state), so it returns
/// [`WorkerExit::Tainted`] after answering the batch and lets the
/// supervisor replace it.
fn run_worker(ctx: &WorkerCtx) -> WorkerExit {
    // Warm matrix pools shared across all batches this worker processes:
    // after the first few users, scoring stops allocating entirely (each
    // scoped scoring thread checks one pool out per batch).
    let pool_stash = kucnet_tensor::PoolStash::new();
    loop {
        // Holding the lock while waiting parks the other idle workers on
        // the mutex instead of the channel — same wakeup semantics, and the
        // lock is released before any scoring work happens.
        let batch = {
            let rx = ctx.batch_rx.lock();
            rx.recv()
        };
        let batch = match batch {
            Ok(batch) => batch,
            Err(_) => return WorkerExit::Shutdown,
        };
        let mut by_user: HashMap<u32, Vec<Job>> = HashMap::new();
        for job in batch {
            by_user.entry(job.user.0).or_default().push(job);
        }
        let mut users: Vec<u32> = by_user.keys().copied().collect();
        users.sort_unstable();
        // Pinning order (DESIGN.md §15): the **model pin comes first**, and
        // everything downstream derives from it. One registry pin per batch
        // freezes the model generation of every variant; each graph context
        // is then taken *from the pinned model's service*, freezing the
        // graph epoch. A hot-swap or refresh tick landing mid-batch can
        // therefore never produce an (old-model, new-epoch) hybrid — both
        // coordinates were fixed together at dispatch.
        let pin = ctx.registry.pin();
        let variants: Vec<usize> = users.iter().map(|&u| pin.route(UserId(u))).collect();
        let bctxs: Vec<Box<dyn GraphContext + '_>> =
            pin.models().iter().map(|m| m.service().graph_context()).collect();
        let scored: Vec<Result<Vec<f32>, String>> = kucnet_par::par_try_map_with(
            ctx.batch_threads,
            users.len(),
            || pool_stash.checkout(),
            |pool, i| {
                let user = UserId(users[i]);
                let variant = variants[i];
                let model = &pin.models()[variant];
                let bctx = &bctxs[variant];
                let version = CacheVersion::new(model.version(), bctx.user_version(user));
                let quantized = model.quantized();
                let service = model.service();
                let fill_started = Instant::now();
                let ((graph, state), hit) =
                    ctx.cache.get_or_insert_context_versioned(user, version, || {
                        let graph = bctx.build(user);
                        // Precompute the user's layer-1 propagation at fill
                        // time, in the precision this pin serves; warm-path
                        // requests then resume from layer 2.
                        let state = service.build_user_state(pool, &graph, quantized);
                        (graph, state)
                    });
                if !hit {
                    let fill_micros = fill_started.elapsed().as_micros();
                    // audit: allow(no-lossy-cast) — a latency past u64::MAX µs is unreachable; saturating is the right histogram clamp
                    ctx.stage_fill.record(u64::try_from(fill_micros).unwrap_or(u64::MAX));
                }
                // Attribute the cache outcome to the variant only once the
                // build actually resolved (a panicking build propagates
                // before reaching this line).
                ctx.registry.record_cache(variant, hit);
                let warm_started = Instant::now();
                let scores = match state {
                    // The precision check is belt-and-braces: a toggle
                    // republishes under a new version, so a resident state
                    // of the wrong precision should never match the stamp.
                    Some(state) if state.quantized() == quantized => {
                        service.score_graph_from_state(pool, &graph, &state)
                    }
                    _ if quantized => service.score_graph_quant_pooled(pool, &graph),
                    _ => service.score_graph_pooled(pool, &graph),
                };
                // audit: allow(no-lossy-cast) — a latency past u64::MAX µs is unreachable; saturating is the right histogram clamp
                let micros = u64::try_from(warm_started.elapsed().as_micros()).unwrap_or(u64::MAX);
                ctx.stage_warm.record(micros);
                scores
            },
        );
        drop(bctxs);
        let mut tainted = false;
        for (i, (user, result)) in users.iter().zip(scored).enumerate() {
            let jobs = by_user.remove(user).unwrap_or_default();
            let model = &pin.models()[variants[i]];
            match result {
                Ok(scores) => {
                    saturating_inc(&ctx.users_scored);
                    for job in jobs {
                        let ranking = rank_top_k(&scores, job.top_k);
                        saturating_dec(&ctx.queue_depth);
                        let _ = job.reply.send(Ok(ScoredReply {
                            variant: variants[i],
                            variant_name: Arc::clone(model.name()),
                            model_version: model.version(),
                            ranking,
                        }));
                    }
                }
                Err(message) => {
                    tainted = true;
                    saturating_inc(&ctx.panics_total);
                    for job in jobs {
                        saturating_dec(&ctx.queue_depth);
                        let _ = job.reply.send(Err(ServeError::Internal(format!(
                            "scoring panicked: {message}"
                        ))));
                    }
                }
            }
        }
        if tainted {
            return WorkerExit::Tainted;
        }
    }
}

/// Top-`k` `(item, score)` pairs in descending score order, using the same
/// selection the offline evaluator uses (`kucnet_eval::top_n_indices`), so
/// served rankings are identical to offline rankings down to tie-breaks.
fn rank_top_k(scores: &[f32], k: usize) -> Ranking {
    top_n_indices(scores, k)
        .into_iter()
        // audit: allow(no-lossy-cast) — item indices are bounded by the u32 item-id space; saturation is unreachable
        .map(|i| (u32::try_from(i).unwrap_or(u32::MAX), scores[i]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScoreService;
    use kucnet_graph::{LayeredGraph, NodeId};

    fn single_registry(service: Arc<dyn ScoreService>) -> Arc<ModelRegistry> {
        Arc::new(ModelRegistry::single(service, 0))
    }

    /// A deterministic stand-in model: user `u` scores item `i` as
    /// `((u * 31 + i * 17) % 97)`; optionally panics on one user's build.
    struct MockService {
        n_users: usize,
        n_items: usize,
        build_delay: Duration,
        panic_user: Option<u32>,
    }

    impl ScoreService for MockService {
        fn name(&self) -> String {
            "mock".to_string()
        }

        fn n_users(&self) -> usize {
            self.n_users
        }

        fn n_items(&self) -> usize {
            self.n_items
        }

        fn build_user_graph(&self, user: UserId) -> Arc<LayeredGraph> {
            if self.panic_user == Some(user.0) {
                panic!("mock build exploded for user {}", user.0);
            }
            std::thread::sleep(self.build_delay);
            Arc::new(LayeredGraph {
                root: NodeId(user.0),
                node_lists: vec![vec![NodeId(user.0)]],
                layers: vec![],
            })
        }

        fn score_graph(&self, graph: &LayeredGraph) -> Vec<f32> {
            let u = graph.root.0 as usize;
            (0..self.n_items).map(|i| ((u * 31 + i * 17) % 97) as f32).collect()
        }
    }

    fn test_config(max_batch: usize, flush_ms: u64) -> ServeConfig {
        ServeConfig {
            max_batch,
            flush_deadline: Duration::from_millis(flush_ms),
            workers: 2,
            cache_capacity: 16,
            ..ServeConfig::default()
        }
    }

    fn mock_batcher(config: &ServeConfig) -> (Arc<Batcher>, Arc<SubgraphCache>) {
        let service: Arc<dyn ScoreService> = Arc::new(MockService {
            n_users: 8,
            n_items: 20,
            build_delay: Duration::ZERO,
            panic_user: None,
        });
        let cache = Arc::new(SubgraphCache::new(config.cache_capacity));
        (Arc::new(Batcher::start(single_registry(service), Arc::clone(&cache), config)), cache)
    }

    #[test]
    fn single_request_flushes_at_deadline() {
        // max_batch is high, so only the flush deadline can release the job.
        let (batcher, _) = mock_batcher(&test_config(64, 30));
        let started = Instant::now();
        let ranking = batcher.submit(UserId(2), 3).unwrap().ranking;
        let elapsed = started.elapsed();
        assert_eq!(ranking.len(), 3);
        assert!(elapsed >= Duration::from_millis(25), "flushed early: {elapsed:?}");
        assert!(elapsed < Duration::from_secs(5), "deadline flush never fired");
        assert_eq!(batcher.stats().batches, 1);
    }

    #[test]
    fn full_batch_flushes_before_deadline() {
        // Deadline is far away (5s); max_batch=2 must flush as soon as two
        // jobs are pending.
        let (batcher, _) = mock_batcher(&test_config(2, 5_000));
        let started = Instant::now();
        let b2 = Arc::clone(&batcher);
        let other = std::thread::spawn(move || b2.submit(UserId(1), 2));
        let ranking = batcher.submit(UserId(2), 2).unwrap().ranking;
        let other_ranking = other.join().expect("submitter thread").unwrap().ranking;
        let elapsed = started.elapsed();
        assert!(elapsed < Duration::from_secs(4), "batch-full flush never fired: {elapsed:?}");
        assert_eq!(ranking.len(), 2);
        assert_eq!(other_ranking.len(), 2);
    }

    #[test]
    fn duplicate_users_in_a_batch_are_scored_once() {
        let config = test_config(4, 200);
        let service: Arc<dyn ScoreService> = Arc::new(MockService {
            n_users: 8,
            n_items: 20,
            build_delay: Duration::ZERO,
            panic_user: None,
        });
        let cache = Arc::new(SubgraphCache::new(16));
        let batcher = Arc::new(Batcher::start(single_registry(service), cache, &config));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let b = Arc::clone(&batcher);
            handles.push(std::thread::spawn(move || b.submit(UserId(3), 5)));
        }
        let rankings: Vec<Ranking> =
            handles.into_iter().map(|h| h.join().expect("submitter").unwrap().ranking).collect();
        for r in &rankings {
            assert_eq!(r, &rankings[0], "duplicate requests must agree");
        }
        let stats = batcher.stats();
        assert_eq!(stats.jobs, 4);
        assert!(
            stats.users_scored < stats.jobs,
            "at least one duplicate must be collapsed: {stats:?}"
        );
    }

    #[test]
    fn rankings_are_descending_and_match_scores() {
        let (batcher, _) = mock_batcher(&test_config(1, 1));
        let ranking = batcher.submit(UserId(1), 10).unwrap().ranking;
        assert_eq!(ranking.len(), 10);
        for pair in ranking.windows(2) {
            assert!(pair[0].1 >= pair[1].1, "not descending: {ranking:?}");
        }
    }

    #[test]
    fn parallel_batch_scoring_matches_serial() {
        // Same burst of distinct users scored with batch_threads = 1 and 4:
        // every reply must be identical (scoring is a pure per-user map).
        let burst = |batch_threads: usize| -> Vec<Ranking> {
            let config = ServeConfig { batch_threads, ..test_config(8, 100) };
            let (batcher, _) = mock_batcher(&config);
            let handles: Vec<_> = (0..6u32)
                .map(|u| {
                    let b = Arc::clone(&batcher);
                    std::thread::spawn(move || b.submit(UserId(u), 5))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("submitter").unwrap().ranking).collect()
        };
        assert_eq!(burst(1), burst(4));
    }

    #[test]
    fn stage_histograms_split_fill_from_warm_scoring() {
        let (batcher, cache) = mock_batcher(&test_config(1, 1));
        batcher.submit(UserId(4), 2).unwrap(); // cold: fill + warm
        batcher.submit(UserId(4), 2).unwrap(); // warm only
        let stats = batcher.stats();
        assert!(stats.fill_p50_us > 0, "cold request must record a fill: {stats:?}");
        assert!(stats.warm_p50_us > 0, "every request must record warm scoring: {stats:?}");
        assert!(cache.stats().hits >= 1, "second request must skip the fill stage");
    }

    #[test]
    fn submit_after_shutdown_is_unavailable() {
        let (batcher, _) = mock_batcher(&test_config(2, 1));
        batcher.shutdown();
        assert!(matches!(batcher.submit(UserId(0), 1), Err(ServeError::Unavailable)));
    }

    #[test]
    fn repeat_user_hits_cache() {
        let (batcher, cache) = mock_batcher(&test_config(1, 1));
        batcher.submit(UserId(5), 2).unwrap();
        batcher.submit(UserId(5), 2).unwrap();
        let stats = cache.stats();
        assert!(stats.hits >= 1, "second request must hit the cache: {stats:?}");
    }

    #[test]
    fn failed_dispatch_counts_no_batch() {
        // Regression: a batch whose dispatch fails (workers already gone at
        // shutdown) used to count in `batches`/`jobs` anyway.
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let (batch_tx, batch_rx) = mpsc::channel::<Vec<Job>>();
        drop(batch_rx); // no worker will ever see the dispatch
        let (reply_tx, _reply_rx) = mpsc::channel();
        job_tx.send(Job { user: UserId(0), top_k: 1, reply: reply_tx }).unwrap();
        drop(job_tx);
        let batches = AtomicU64::new(0);
        let jobs = AtomicU64::new(0);
        run_batcher(&job_rx, &batch_tx, 4, Duration::from_millis(1), &batches, &jobs);
        assert_eq!(batches.load(Ordering::Relaxed), 0, "undispatched batch must not count");
        assert_eq!(jobs.load(Ordering::Relaxed), 0, "undispatched jobs must not count");
    }

    #[test]
    fn panicking_user_gets_500_others_succeed_and_pool_heals() {
        // One user's build panics inside a mixed batch: its jobs get
        // Internal, every other job still succeeds, and the supervisor
        // respawns the tainted worker back to full pool size.
        let config = ServeConfig { workers: 2, ..test_config(8, 100) };
        let service: Arc<dyn ScoreService> = Arc::new(MockService {
            n_users: 8,
            n_items: 20,
            build_delay: Duration::ZERO,
            panic_user: Some(3),
        });
        let cache = Arc::new(SubgraphCache::new(16));
        let batcher = Arc::new(Batcher::start(single_registry(service), cache, &config));

        let handles: Vec<_> = (0..6u32)
            .map(|u| {
                let b = Arc::clone(&batcher);
                std::thread::spawn(move || (u, b.submit(UserId(u), 5)))
            })
            .collect();
        for handle in handles {
            let (u, result) = handle.join().expect("submitter");
            if u == 3 {
                match result {
                    Err(ServeError::Internal(msg)) => {
                        assert!(msg.contains("mock build exploded"), "payload lost: {msg}");
                    }
                    other => panic!("user 3 must get Internal, got {other:?}"),
                }
            } else {
                assert_eq!(result.expect("healthy user must succeed").ranking.len(), 5, "user {u}");
            }
        }

        // The pool heals back to its configured size.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let stats = batcher.stats();
            if stats.workers_alive == 2 && stats.workers_respawned >= 1 {
                assert!(stats.panics_total >= 1, "{stats:?}");
                break;
            }
            assert!(Instant::now() < deadline, "pool never healed: {stats:?}");
            std::thread::sleep(Duration::from_millis(10));
        }

        // And it still serves after healing.
        assert_eq!(batcher.submit(UserId(1), 3).expect("post-heal request").ranking.len(), 3);
        batcher.shutdown();
    }

    #[test]
    fn queue_overflow_sheds_with_overloaded() {
        // Capacity 1 queue + slow builds: concurrent submits must shed
        // rather than queue without bound.
        let config = ServeConfig { workers: 1, max_queue_depth: 1, ..test_config(1, 1) };
        let service: Arc<dyn ScoreService> = Arc::new(MockService {
            n_users: 8,
            n_items: 20,
            build_delay: Duration::from_millis(100),
            panic_user: None,
        });
        let cache = Arc::new(SubgraphCache::new(1));
        let batcher = Arc::new(Batcher::start(single_registry(service), cache, &config));
        let handles: Vec<_> = (0..4u32)
            .map(|u| {
                let b = Arc::clone(&batcher);
                std::thread::spawn(move || b.submit(UserId(u), 2))
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().expect("submitter")).collect();
        let shed = results.iter().filter(|r| matches!(r, Err(ServeError::Overloaded))).count();
        let ok = results.iter().filter(|r| r.is_ok()).count();
        assert!(shed >= 1, "at least one submit must shed: {results:?}");
        assert!(ok >= 1, "at least one submit must succeed: {results:?}");
        assert_eq!(batcher.stats().shed_total, shed as u64);
        batcher.shutdown();
        assert_eq!(batcher.stats().workers_alive, 0, "shutdown joins all workers");
    }
}
