//! The micro-batching request queue and scoring worker pool.
//!
//! Requests enter a `std::sync::mpsc` channel. A dedicated batcher thread
//! coalesces up to `max_batch` pending requests into one dispatch — waiting
//! at most `flush_deadline` after the first request of a batch — and hands
//! the batch to a worker pool. Workers group a batch by user id, so a burst
//! of requests for the same user costs a single subgraph build + forward
//! pass, and every other user in the batch reuses the warm parameter state
//! back-to-back.
//!
//! KUCNet's forward pass already "batches" across candidate items: one
//! L-layer propagation scores every item for a user (PAPER.md §IV). The
//! batcher adds the request-level half: queueing amortization and duplicate
//! collapsing under concurrent load.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use kucnet_eval::top_n_indices;
use kucnet_graph::UserId;
use parking_lot::Mutex;

use crate::cache::{saturating_inc, SubgraphCache};
use crate::{ScoreService, ServeConfig, ServeError};

/// A ranked recommendation list: `(item id, score)` in descending score
/// order.
pub type Ranking = Vec<(u32, f32)>;

/// One queued scoring request.
struct Job {
    user: UserId,
    top_k: usize,
    reply: mpsc::Sender<Result<Ranking, ServeError>>,
}

/// Counters describing batching behavior (exposed for tests and metrics).
#[derive(Clone, Copy, Debug, Default)]
pub struct BatcherStats {
    /// Batches dispatched to the worker pool.
    pub batches: u64,
    /// Individual requests across all dispatched batches.
    pub jobs: u64,
    /// Unique users actually scored (jobs minus duplicates collapsed).
    pub users_scored: u64,
}

/// The micro-batching queue: accepts requests, coalesces them, and scores
/// them on a worker pool over a shared [`SubgraphCache`].
pub struct Batcher {
    queue: Mutex<Option<mpsc::Sender<Job>>>,
    reply_timeout: Duration,
    batches: Arc<AtomicU64>,
    jobs: Arc<AtomicU64>,
    users_scored: Arc<AtomicU64>,
    batcher_thread: Mutex<Option<JoinHandle<()>>>,
    worker_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Batcher {
    /// Starts the batcher thread and `config.workers` scoring workers over
    /// `service`, memoizing pruned subgraphs in `cache`.
    pub fn start(
        service: Arc<dyn ScoreService>,
        cache: Arc<SubgraphCache>,
        config: &ServeConfig,
    ) -> Self {
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let (batch_tx, batch_rx) = mpsc::channel::<Vec<Job>>();
        let batch_rx = Arc::new(Mutex::new(batch_rx));

        let batches = Arc::new(AtomicU64::new(0));
        let jobs = Arc::new(AtomicU64::new(0));
        let users_scored = Arc::new(AtomicU64::new(0));

        let max_batch = config.max_batch.max(1);
        let flush = config.flush_deadline;
        let b_batches = Arc::clone(&batches);
        let b_jobs = Arc::clone(&jobs);
        let batcher_thread = std::thread::spawn(move || {
            run_batcher(&job_rx, &batch_tx, max_batch, flush, &b_batches, &b_jobs);
        });

        let mut worker_threads = Vec::new();
        let batch_threads = config.batch_threads.max(1);
        for _ in 0..config.workers.max(1) {
            let rx = Arc::clone(&batch_rx);
            let service = Arc::clone(&service);
            let cache = Arc::clone(&cache);
            let scored = Arc::clone(&users_scored);
            worker_threads.push(std::thread::spawn(move || {
                run_worker(&rx, service.as_ref(), &cache, &scored, batch_threads);
            }));
        }

        Self {
            queue: Mutex::new(Some(job_tx)),
            reply_timeout: config.reply_timeout,
            batches,
            jobs,
            users_scored,
            batcher_thread: Mutex::new(Some(batcher_thread)),
            worker_threads: Mutex::new(worker_threads),
        }
    }

    /// Submits one request and blocks until its ranking is scored (or the
    /// queue shut down / the reply timed out).
    pub fn submit(&self, user: UserId, top_k: usize) -> Result<Ranking, ServeError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        {
            let queue = self.queue.lock();
            let Some(tx) = queue.as_ref() else {
                return Err(ServeError::Unavailable);
            };
            if tx.send(Job { user, top_k, reply: reply_tx }).is_err() {
                return Err(ServeError::Unavailable);
            }
        }
        match reply_rx.recv_timeout(self.reply_timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                Err(ServeError::Internal("scoring timed out".to_string()))
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::Unavailable),
        }
    }

    /// Snapshot of batching counters.
    pub fn stats(&self) -> BatcherStats {
        BatcherStats {
            batches: self.batches.load(Ordering::Relaxed),
            jobs: self.jobs.load(Ordering::Relaxed),
            users_scored: self.users_scored.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting work, drains in-flight batches, and joins every
    /// thread. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        // Dropping the job sender ends the batcher loop, which drops the
        // batch sender, which ends every worker.
        self.queue.lock().take();
        if let Some(handle) = self.batcher_thread.lock().take() {
            let _ = handle.join();
        }
        for handle in self.worker_threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Coalesces queued jobs into batches of at most `max_batch`, flushing a
/// partial batch `flush` after its first job arrived.
fn run_batcher(
    job_rx: &mpsc::Receiver<Job>,
    batch_tx: &mpsc::Sender<Vec<Job>>,
    max_batch: usize,
    flush: Duration,
    batches: &AtomicU64,
    jobs: &AtomicU64,
) {
    loop {
        // Block for the batch's first job; an error means shutdown.
        let first = match job_rx.recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let mut batch = vec![first];
        let deadline = Instant::now() + flush;
        let mut disconnected = false;
        while batch.len() < max_batch {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match job_rx.recv_timeout(remaining) {
                Ok(job) => batch.push(job),
                Err(mpsc::RecvTimeoutError::Timeout) => break,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        saturating_inc(batches);
        for _ in 0..batch.len() {
            saturating_inc(jobs);
        }
        if batch_tx.send(batch).is_err() || disconnected {
            return;
        }
    }
}

/// Worker loop: pull a batch, score each unique user once, answer all jobs.
/// Unique users within a batch are scored concurrently on the shared
/// `kucnet-par` pool (`batch_threads` wide) in ascending user order, so
/// replies are independent of both HashMap iteration order and scheduling.
fn run_worker(
    batch_rx: &Mutex<mpsc::Receiver<Vec<Job>>>,
    service: &dyn ScoreService,
    cache: &SubgraphCache,
    users_scored: &AtomicU64,
    batch_threads: usize,
) {
    // Warm matrix pools shared across all batches this worker processes:
    // after the first few users, scoring stops allocating entirely (each
    // scoped scoring thread checks one pool out per batch).
    let pool_stash = kucnet_tensor::PoolStash::new();
    loop {
        // Holding the lock while waiting parks the other idle workers on
        // the mutex instead of the channel — same wakeup semantics, and the
        // lock is released before any scoring work happens.
        let batch = {
            let rx = batch_rx.lock();
            rx.recv()
        };
        let batch = match batch {
            Ok(batch) => batch,
            Err(_) => return,
        };
        let mut by_user: HashMap<u32, Vec<Job>> = HashMap::new();
        for job in batch {
            by_user.entry(job.user.0).or_default().push(job);
        }
        let mut users: Vec<u32> = by_user.keys().copied().collect();
        users.sort_unstable();
        let scored: Vec<Vec<f32>> = kucnet_par::par_map_with(
            batch_threads,
            users.len(),
            || pool_stash.checkout(),
            |pool, i| {
                let user = UserId(users[i]);
                let graph = cache.get_or_insert_with(user, || service.build_user_graph(user));
                service.score_graph_pooled(pool, &graph)
            },
        );
        for (user, scores) in users.iter().zip(scored) {
            saturating_inc(users_scored);
            if let Some(jobs) = by_user.remove(user) {
                for job in jobs {
                    let ranking = rank_top_k(&scores, job.top_k);
                    let _ = job.reply.send(Ok(ranking));
                }
            }
        }
    }
}

/// Top-`k` `(item, score)` pairs in descending score order, using the same
/// selection the offline evaluator uses (`kucnet_eval::top_n_indices`), so
/// served rankings are identical to offline rankings down to tie-breaks.
fn rank_top_k(scores: &[f32], k: usize) -> Ranking {
    top_n_indices(scores, k)
        .into_iter()
        .map(|i| (u32::try_from(i).unwrap_or(u32::MAX), scores[i]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kucnet_graph::{LayeredGraph, NodeId};

    /// A deterministic stand-in model: user `u` scores item `i` as
    /// `((u * 31 + i * 17) % 97)`.
    struct MockService {
        n_users: usize,
        n_items: usize,
        build_delay: Duration,
    }

    impl ScoreService for MockService {
        fn name(&self) -> String {
            "mock".to_string()
        }

        fn n_users(&self) -> usize {
            self.n_users
        }

        fn n_items(&self) -> usize {
            self.n_items
        }

        fn build_user_graph(&self, user: UserId) -> Arc<LayeredGraph> {
            std::thread::sleep(self.build_delay);
            Arc::new(LayeredGraph {
                root: NodeId(user.0),
                node_lists: vec![vec![NodeId(user.0)]],
                layers: vec![],
            })
        }

        fn score_graph(&self, graph: &LayeredGraph) -> Vec<f32> {
            let u = graph.root.0 as usize;
            (0..self.n_items).map(|i| ((u * 31 + i * 17) % 97) as f32).collect()
        }
    }

    fn test_config(max_batch: usize, flush_ms: u64) -> ServeConfig {
        ServeConfig {
            max_batch,
            flush_deadline: Duration::from_millis(flush_ms),
            workers: 2,
            cache_capacity: 16,
            ..ServeConfig::default()
        }
    }

    fn mock_batcher(config: &ServeConfig) -> (Arc<Batcher>, Arc<SubgraphCache>) {
        let service: Arc<dyn ScoreService> =
            Arc::new(MockService { n_users: 8, n_items: 20, build_delay: Duration::ZERO });
        let cache = Arc::new(SubgraphCache::new(config.cache_capacity));
        (Arc::new(Batcher::start(service, Arc::clone(&cache), config)), cache)
    }

    #[test]
    fn single_request_flushes_at_deadline() {
        // max_batch is high, so only the flush deadline can release the job.
        let (batcher, _) = mock_batcher(&test_config(64, 30));
        let started = Instant::now();
        let ranking = batcher.submit(UserId(2), 3).unwrap();
        let elapsed = started.elapsed();
        assert_eq!(ranking.len(), 3);
        assert!(elapsed >= Duration::from_millis(25), "flushed early: {elapsed:?}");
        assert!(elapsed < Duration::from_secs(5), "deadline flush never fired");
        assert_eq!(batcher.stats().batches, 1);
    }

    #[test]
    fn full_batch_flushes_before_deadline() {
        // Deadline is far away (5s); max_batch=2 must flush as soon as two
        // jobs are pending.
        let (batcher, _) = mock_batcher(&test_config(2, 5_000));
        let started = Instant::now();
        let b2 = Arc::clone(&batcher);
        let other = std::thread::spawn(move || b2.submit(UserId(1), 2));
        let ranking = batcher.submit(UserId(2), 2).unwrap();
        let other_ranking = other.join().expect("submitter thread").unwrap();
        let elapsed = started.elapsed();
        assert!(elapsed < Duration::from_secs(4), "batch-full flush never fired: {elapsed:?}");
        assert_eq!(ranking.len(), 2);
        assert_eq!(other_ranking.len(), 2);
    }

    #[test]
    fn duplicate_users_in_a_batch_are_scored_once() {
        let config = test_config(4, 200);
        let service: Arc<dyn ScoreService> =
            Arc::new(MockService { n_users: 8, n_items: 20, build_delay: Duration::ZERO });
        let cache = Arc::new(SubgraphCache::new(16));
        let batcher = Arc::new(Batcher::start(service, cache, &config));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let b = Arc::clone(&batcher);
            handles.push(std::thread::spawn(move || b.submit(UserId(3), 5)));
        }
        let rankings: Vec<Ranking> =
            handles.into_iter().map(|h| h.join().expect("submitter").unwrap()).collect();
        for r in &rankings {
            assert_eq!(r, &rankings[0], "duplicate requests must agree");
        }
        let stats = batcher.stats();
        assert_eq!(stats.jobs, 4);
        assert!(
            stats.users_scored < stats.jobs,
            "at least one duplicate must be collapsed: {stats:?}"
        );
    }

    #[test]
    fn rankings_are_descending_and_match_scores() {
        let (batcher, _) = mock_batcher(&test_config(1, 1));
        let ranking = batcher.submit(UserId(1), 10).unwrap();
        assert_eq!(ranking.len(), 10);
        for pair in ranking.windows(2) {
            assert!(pair[0].1 >= pair[1].1, "not descending: {ranking:?}");
        }
    }

    #[test]
    fn parallel_batch_scoring_matches_serial() {
        // Same burst of distinct users scored with batch_threads = 1 and 4:
        // every reply must be identical (scoring is a pure per-user map).
        let burst = |batch_threads: usize| -> Vec<Ranking> {
            let config = ServeConfig { batch_threads, ..test_config(8, 100) };
            let (batcher, _) = mock_batcher(&config);
            let handles: Vec<_> = (0..6u32)
                .map(|u| {
                    let b = Arc::clone(&batcher);
                    std::thread::spawn(move || b.submit(UserId(u), 5))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("submitter").unwrap()).collect()
        };
        assert_eq!(burst(1), burst(4));
    }

    #[test]
    fn submit_after_shutdown_is_unavailable() {
        let (batcher, _) = mock_batcher(&test_config(2, 1));
        batcher.shutdown();
        assert_eq!(batcher.submit(UserId(0), 1), Err(ServeError::Unavailable));
    }

    #[test]
    fn repeat_user_hits_cache() {
        let (batcher, cache) = mock_batcher(&test_config(1, 1));
        batcher.submit(UserId(5), 2).unwrap();
        batcher.submit(UserId(5), 2).unwrap();
        let stats = cache.stats();
        assert!(stats.hits >= 1, "second request must hit the cache: {stats:?}");
    }
}
