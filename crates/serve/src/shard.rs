//! User-hash shard routing: N worker pools, each pinning one shard of a
//! segmented CKG (DESIGN.md §17).
//!
//! Each shard gets the full single-model serving stack — a
//! [`ModelRegistry`], a shard-aware [`SubgraphCache`], and a [`Batcher`]
//! worker pool — so per-shard caches only ever hold subgraphs of users the
//! shard owns, and a hot shard cannot evict another shard's working set.
//! Requests are routed by `kucnet_graph::shard_of`, the same pure hash the
//! dataset generator and the differential tests use, so a user's requests
//! always land on the pool pinning their segment.

use std::sync::Arc;

use kucnet::ScoreService;
use kucnet_graph::{shard_of, UserId};

use crate::batch::{Batcher, BatcherStats, ScoredReply};
use crate::cache::{CacheStats, SubgraphCache};
use crate::registry::ModelRegistry;
use crate::{ServeConfig, ServeError};

/// One shard's serving stack.
struct ShardHandle {
    registry: Arc<ModelRegistry>,
    cache: Arc<SubgraphCache>,
    batcher: Batcher,
}

/// Routes requests to per-shard worker pools by user hash.
pub struct ShardRouter {
    shards: Vec<ShardHandle>,
}

impl ShardRouter {
    /// Starts one pool per service. `services[s]` must be the scorer for
    /// shard `s` of the same sharded graph (same shard count, same layout);
    /// the router routes `user` to `services[shard_of(user, len)]`.
    pub fn start(
        services: Vec<Arc<dyn ScoreService>>,
        config: &ServeConfig,
    ) -> std::io::Result<Self> {
        if services.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a shard router needs at least one shard service",
            ));
        }
        let mut shards = Vec::with_capacity(services.len());
        for service in services {
            let registry = Arc::new(ModelRegistry::single(service, config.ab_seed));
            if config.quantized {
                for (name, _) in registry.weights() {
                    let _ = registry.set_quantized(&name, true);
                }
            }
            let cache = Arc::new(SubgraphCache::new(config.cache_capacity));
            let batcher = Batcher::start(Arc::clone(&registry), Arc::clone(&cache), config);
            shards.push(ShardHandle { registry, cache, batcher });
        }
        Ok(Self { shards })
    }

    /// Number of shards (worker pools).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard that will serve `user`.
    pub fn shard_for(&self, user: UserId) -> usize {
        shard_of(user.0, self.shards.len())
    }

    /// Scores `user` on their shard's pool and returns the top-`top_k`
    /// ranking. Blocking, like [`Batcher::submit`]. Users outside the
    /// model's user space are rejected with [`ServeError::UnknownUser`],
    /// mirroring the HTTP frontend's validation.
    pub fn recommend(&self, user: UserId, top_k: usize) -> Result<ScoredReply, ServeError> {
        let shard = &self.shards[self.shard_for(user)];
        if user.0 as usize >= shard.registry.n_users() {
            return Err(ServeError::UnknownUser(user.0 as u64));
        }
        let k = top_k.min(shard.registry.n_items());
        shard.batcher.submit(user, k)
    }

    /// Batcher statistics of shard `s`.
    pub fn batcher_stats(&self, s: usize) -> BatcherStats {
        self.shards[s].batcher.stats()
    }

    /// Subgraph-cache statistics of shard `s`.
    pub fn cache_stats(&self, s: usize) -> CacheStats {
        self.shards[s].cache.stats()
    }

    /// The registry backing shard `s` (for admin-style toggles in benches).
    pub fn registry(&self, s: usize) -> &Arc<ModelRegistry> {
        &self.shards[s].registry
    }

    /// Shuts every pool down, draining in-flight work.
    pub fn shutdown(&self) {
        for shard in &self.shards {
            shard.batcher.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kucnet::{KucNetConfig, ShardService};
    use kucnet_datasets::{DatasetProfile, GeneratedDataset};
    use kucnet_graph::ShardedCkg;

    fn router_for(n_shards: usize) -> (ShardRouter, usize) {
        let data = GeneratedDataset::generate(&DatasetProfile::tiny(), 42);
        let ckg = data.build_ckg(&data.interactions);
        let n_users = ckg.n_users();
        let config = KucNetConfig::default();
        let sharded = ShardedCkg::from_ckg(&ckg, n_shards).unwrap();
        let services: Vec<Arc<dyn ScoreService>> = (0..n_shards)
            .map(|s| {
                Arc::new(ShardService::for_shard(config.clone(), &sharded, s))
                    as Arc<dyn ScoreService>
            })
            .collect();
        let serve = ServeConfig { workers: 1, batch_threads: 1, ..ServeConfig::default() };
        (ShardRouter::start(services, &serve).unwrap(), n_users)
    }

    #[test]
    fn rankings_are_invariant_across_shard_counts() {
        let (one, n_users) = router_for(1);
        let (two, _) = router_for(2);
        for u in 0..n_users {
            let user = UserId(u as u32);
            let a = one.recommend(user, 10).unwrap();
            let b = two.recommend(user, 10).unwrap();
            assert_eq!(a.ranking, b.ranking, "user {u} diverged between 1 and 2 shards");
        }
        one.shutdown();
        two.shutdown();
    }

    #[test]
    fn out_of_range_user_is_rejected() {
        let (router, n_users) = router_for(2);
        let err = router.recommend(UserId(n_users as u32 + 7), 5).unwrap_err();
        assert!(matches!(err, ServeError::UnknownUser(_)), "{err:?}");
        router.shutdown();
    }

    #[test]
    fn routing_is_pure_and_caches_stay_shard_local() {
        let (router, n_users) = router_for(2);
        for u in 0..n_users {
            let user = UserId(u as u32);
            assert_eq!(router.shard_for(user), shard_of(user.0, 2));
            router.recommend(user, 5).unwrap();
        }
        // Every lookup landed on the user's own shard cache.
        let total: u64 = (0..2).map(|s| router.cache_stats(s).lookups).sum();
        assert_eq!(total, n_users as u64);
        router.shutdown();
    }
}
