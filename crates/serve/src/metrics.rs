//! Request-level serving metrics: counters and a fixed-bucket latency
//! histogram.
//!
//! The histogram trades exactness for constant memory and lock-free
//! recording: latencies land in one of a fixed set of buckets
//! (microsecond upper bounds, roughly logarithmic from 50µs to 10s), and a
//! percentile is reported as the upper bound of the bucket containing it —
//! an upper estimate that is monotone and stable under load. Every counter
//! uses saturating arithmetic; a long-lived server must never wrap.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::batch::BatcherStats;
use crate::cache::{saturating_inc, CacheStats};

/// Bucket upper bounds in microseconds (last bucket catches everything).
/// The tail extends to 10 minutes: under scale-profile load, queueing can
/// push tail latencies far past the old 10s top bound, and a histogram that
/// clamps there reports a silently saturated p99.
const BUCKET_BOUNDS_US: [u64; 20] = [
    50,
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    5_000_000,
    10_000_000,
    30_000_000,
    60_000_000,
    120_000_000,
    600_000_000,
];

/// A fixed-bucket latency histogram with saturating counters.
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKET_BOUNDS_US.len()],
    /// Observations past the last bucket bound. They still count toward
    /// the last bucket (quantiles stay monotone upper estimates), but the
    /// saturation is visible here instead of silent.
    overflow: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self { counts: std::array::from_fn(|_| AtomicU64::new(0)), overflow: AtomicU64::new(0) }
    }

    /// Records one observation of `micros`. Observations past the last
    /// bucket bound are clamped into the last bucket *and* counted in
    /// [`LatencyHistogram::overflow_count`], so top-bound saturation is
    /// observable rather than silent.
    pub fn record(&self, micros: u64) {
        match BUCKET_BOUNDS_US.iter().position(|&bound| micros <= bound) {
            Some(idx) => saturating_inc(&self.counts[idx]),
            None => {
                saturating_inc(&self.overflow);
                saturating_inc(&self.counts[BUCKET_BOUNDS_US.len() - 1]);
            }
        }
    }

    /// Number of observations that exceeded the last bucket bound.
    pub fn overflow_count(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().fold(0u64, |acc, c| acc.saturating_add(c.load(Ordering::Relaxed)))
    }

    /// The `q`-quantile (`0 < q <= 1`) as the upper bound in microseconds of
    /// the bucket containing it; 0 when nothing was recorded.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // ceil(q * total) observations must be at or below the answer.
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c.load(Ordering::Relaxed));
            if seen >= target {
                return BUCKET_BOUNDS_US[idx];
            }
        }
        BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1]
    }
}

/// Counters for the HTTP serving frontend.
#[derive(Default)]
pub struct ServeMetrics {
    requests_total: AtomicU64,
    errors_total: AtomicU64,
    shed_total: AtomicU64,
    updates_total: AtomicU64,
    latency: LatencyHistogram,
}

/// A point-in-time snapshot of [`ServeMetrics`].
#[derive(Clone, Copy, Debug, Default)]
pub struct MetricsSnapshot {
    /// All `/recommend` requests received (including rejected ones).
    pub requests_total: u64,
    /// Requests answered with a 4xx/5xx status.
    pub errors_total: u64,
    /// Requests shed by admission control (connection cap or queue depth)
    /// with a 503.
    pub shed_total: u64,
    /// Accepted `POST /update` write operations (appends and refresh
    /// ticks).
    pub updates_total: u64,
    /// Median end-to-end latency (µs, bucket upper bound).
    pub p50_us: u64,
    /// 95th-percentile latency (µs, bucket upper bound).
    pub p95_us: u64,
    /// 99th-percentile latency (µs, bucket upper bound).
    pub p99_us: u64,
    /// Latency observations past the last histogram bound — nonzero means
    /// the reported percentiles are saturated at the top bucket.
    pub latency_overflow_total: u64,
}

impl ServeMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one incoming `/recommend` request.
    pub fn record_request(&self) {
        saturating_inc(&self.requests_total);
    }

    /// Counts one error response.
    pub fn record_error(&self) {
        saturating_inc(&self.errors_total);
    }

    /// Counts one request shed by admission control (also an error).
    pub fn record_shed(&self) {
        saturating_inc(&self.shed_total);
    }

    /// Counts one accepted `POST /update` write operation.
    pub fn record_update(&self) {
        saturating_inc(&self.updates_total);
    }

    /// Records the end-to-end latency of a successfully answered request.
    pub fn record_latency_us(&self, micros: u64) {
        self.latency.record(micros);
    }

    /// Snapshot of counters and latency percentiles.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests_total: self.requests_total.load(Ordering::Relaxed),
            errors_total: self.errors_total.load(Ordering::Relaxed),
            shed_total: self.shed_total.load(Ordering::Relaxed),
            updates_total: self.updates_total.load(Ordering::Relaxed),
            p50_us: self.latency.quantile_us(0.50),
            p95_us: self.latency.quantile_us(0.95),
            p99_us: self.latency.quantile_us(0.99),
            latency_overflow_total: self.latency.overflow_count(),
        }
    }

    /// Renders the `/metrics` endpoint body: one `name value` pair per
    /// line, in the flat text style Prometheus scrapers accept.
    /// `graph_epoch` is the current epoch of the (possibly dynamic) graph;
    /// static deployments report a constant 0.
    pub fn render(&self, cache: &CacheStats, batch: &BatcherStats, graph_epoch: u64) -> String {
        let snap = self.snapshot();
        let mut out = String::with_capacity(768);
        let mut line = |name: &str, value: String| {
            out.push_str(name);
            out.push(' ');
            out.push_str(&value);
            out.push('\n');
        };
        line("kucnet_requests_total", snap.requests_total.to_string());
        line("kucnet_errors_total", snap.errors_total.to_string());
        line("kucnet_shed_total", snap.shed_total.to_string());
        line("kucnet_panics_total", batch.panics_total.to_string());
        line("kucnet_workers_respawned", batch.workers_respawned.to_string());
        line("kucnet_workers_alive", batch.workers_alive.to_string());
        line("kucnet_queue_depth", batch.queue_depth.to_string());
        line("kucnet_batches_total", batch.batches.to_string());
        line("kucnet_jobs_total", batch.jobs.to_string());
        line("kucnet_cache_lookups", cache.lookups.to_string());
        line("kucnet_cache_hits", cache.hits.to_string());
        line("kucnet_cache_misses", cache.misses.to_string());
        line("kucnet_cache_evictions", cache.evictions.to_string());
        line("kucnet_cache_invalidations", cache.invalidations.to_string());
        line("kucnet_cache_patched", cache.patched.to_string());
        line("kucnet_cache_entries", cache.entries.to_string());
        line("kucnet_cache_bytes", cache.approx_bytes.to_string());
        line("kucnet_cache_hit_rate", format!("{:.6}", cache.hit_rate()));
        line("kucnet_graph_epoch", graph_epoch.to_string());
        line("kucnet_updates_total", snap.updates_total.to_string());
        line("kucnet_latency_p50_us", snap.p50_us.to_string());
        line("kucnet_latency_p95_us", snap.p95_us.to_string());
        line("kucnet_latency_p99_us", snap.p99_us.to_string());
        line("kucnet_latency_overflow_total", snap.latency_overflow_total.to_string());
        line("kucnet_stage_fill_p50_us", batch.fill_p50_us.to_string());
        line("kucnet_stage_fill_p95_us", batch.fill_p95_us.to_string());
        line("kucnet_stage_fill_p99_us", batch.fill_p99_us.to_string());
        line("kucnet_stage_warm_p50_us", batch.warm_p50_us.to_string());
        line("kucnet_stage_warm_p95_us", batch.warm_p95_us.to_string());
        line("kucnet_stage_warm_p99_us", batch.warm_p99_us.to_string());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), 0);
    }

    #[test]
    fn quantiles_walk_buckets() {
        let h = LatencyHistogram::new();
        // 90 fast observations, 10 slow ones.
        for _ in 0..90 {
            h.record(80); // bucket <= 100
        }
        for _ in 0..10 {
            h.record(900_000); // bucket <= 1_000_000
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.50), 100);
        assert_eq!(h.quantile_us(0.90), 100);
        assert_eq!(h.quantile_us(0.95), 1_000_000);
        assert_eq!(h.quantile_us(0.99), 1_000_000);
    }

    #[test]
    fn oversized_latency_lands_in_last_bucket_and_counts_overflow() {
        let h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.quantile_us(1.0), 600_000_000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.overflow_count(), 1);
        // An in-range observation at the exact top bound does NOT overflow.
        h.record(600_000_000);
        assert_eq!(h.overflow_count(), 1);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn tail_buckets_resolve_past_ten_seconds() {
        // The old histogram clamped everything over 10s into one bucket,
        // silently saturating p99 under heavy load. The extended tail must
        // distinguish tens-of-seconds latencies without overflowing.
        let h = LatencyHistogram::new();
        h.record(25_000_000);
        assert_eq!(h.quantile_us(1.0), 30_000_000);
        assert_eq!(h.overflow_count(), 0);
    }

    #[test]
    fn render_contains_all_keys() {
        let m = ServeMetrics::new();
        m.record_request();
        m.record_shed();
        m.record_latency_us(750);
        m.record_update();
        let cache = CacheStats {
            lookups: 4,
            hits: 3,
            misses: 1,
            invalidations: 2,
            patched: 1,
            ..CacheStats::default()
        };
        let batch = BatcherStats {
            panics_total: 2,
            workers_respawned: 1,
            workers_alive: 4,
            fill_p50_us: 5_000,
            warm_p50_us: 200,
            ..BatcherStats::default()
        };
        let body = m.render(&cache, &batch, 7);
        for key in [
            "kucnet_requests_total 1",
            "kucnet_shed_total 1",
            "kucnet_panics_total 2",
            "kucnet_workers_respawned 1",
            "kucnet_workers_alive 4",
            "kucnet_cache_lookups 4",
            "kucnet_cache_hits 3",
            "kucnet_cache_invalidations 2",
            "kucnet_cache_patched 1",
            "kucnet_cache_hit_rate 0.75",
            "kucnet_graph_epoch 7",
            "kucnet_updates_total 1",
            "kucnet_latency_p50_us 1000",
            "kucnet_latency_overflow_total 0",
            "kucnet_stage_fill_p50_us 5000",
            "kucnet_stage_warm_p50_us 200",
            "kucnet_stage_warm_p99_us 0",
        ] {
            assert!(body.contains(key), "missing `{key}` in:\n{body}");
        }
    }

    #[test]
    fn counters_saturate() {
        let m = ServeMetrics::new();
        m.requests_total.store(u64::MAX, Ordering::Relaxed);
        m.record_request();
        assert_eq!(m.snapshot().requests_total, u64::MAX);
    }
}
