//! The HTTP frontend: a `std::net::TcpListener` accept loop routing
//! requests into the micro-batching scorer.
//!
//! Endpoints:
//!
//! | Route             | Method | Body                                    |
//! |-------------------|--------|-----------------------------------------|
//! | `/recommend`      | POST   | `{"user": <id>, "top_k": <k>}`          |
//! | `/explain`        | POST   | `{"user": u, "item": i, "threshold_milli": t}` |
//! | `/admin/reload`   | POST   | `{"variant": "<name>", "path": "<ckpt>"}` |
//! | `/admin/ab`       | POST   | `{"<variant>": <w>, "quant.<variant>": 0|1, ...}` |
//! | `/healthz`        | GET    | —                                       |
//! | `/metrics`        | GET    | —                                       |
//!
//! `/recommend` answers `{"user":u,"top_k":k,"variant":"v","model_version":
//! n,"items":[{"item":i,"score":s},...]}` ranked by descending score —
//! every response names the A/B variant and model generation that scored
//! it. `/explain` returns the attention-path explanation (Graphviz DOT +
//! text) for one `(user, item)` pair on the live model. `/admin/reload`
//! hot-swaps a variant's model from a checkpoint with zero downtime, and
//! `/admin/ab` replaces the routing weights and/or flips variants between
//! the f32 and quantized scoring paths (`"quant.<variant>": 0|1`, applied
//! all-or-nothing with the weights). Invalid input (bad JSON,
//! unknown fields, out-of-range `top_k`) is a 400 and an out-of-range user
//! id a 404 — never a panic. Shutdown is graceful: the listener stops
//! accepting, in-flight connections finish, and the batcher drains before
//! threads are joined.
//!
//! Two admission-control gates protect the handler pool: connections past
//! `max_connections` are answered `503` inline on the accept thread (no
//! handler thread is spawned), and every accepted socket gets symmetric
//! read *and* write timeouts (`io_timeout`) so a client that stalls in
//! either direction is cut loose instead of pinning a thread.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use kucnet_graph::UserId;
use parking_lot::Mutex;

use crate::batch::{Batcher, BatcherStats, ScoredReply};
use crate::cache::{CacheStats, SubgraphCache};
use crate::http::{
    http_request, json_escape, parse_flat_str_json, parse_flat_u64_json, write_response,
};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::registry::{ModelLoader, ModelRegistry};
use crate::update::GraphUpdater;
use crate::{ScoreService, ServeConfig, ServeError};

/// Default `top_k` when a request omits the field.
const DEFAULT_TOP_K: u64 = 10;

/// Default `/explain` attention threshold in thousandths (0.5, the paper's
/// Figure 7 cutoff).
const DEFAULT_THRESHOLD_MILLI: u64 = 500;

/// Shared state every connection handler sees.
struct Shared {
    registry: Arc<ModelRegistry>,
    cache: Arc<SubgraphCache>,
    batcher: Batcher,
    metrics: ServeMetrics,
    config: ServeConfig,
    /// Checkpoint loader backing `POST /admin/reload`; `None` answers the
    /// route with 400 (in-process reloads through
    /// [`ServerHandle::registry`] still work).
    loader: Option<Arc<dyn ModelLoader>>,
    /// The graph write path, present only for dynamic deployments
    /// ([`Server::start_dynamic`]); `None` answers `POST /update` with 400.
    updater: Option<Arc<dyn GraphUpdater>>,
}

/// The serving frontend; [`Server::start`] returns a [`ServerHandle`].
pub struct Server;

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), starts
    /// the batcher, worker pool, and accept loop, and returns a handle for
    /// inspection and shutdown.
    pub fn start(
        service: Arc<dyn ScoreService>,
        config: ServeConfig,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<ServerHandle> {
        let registry = Arc::new(ModelRegistry::single(service, config.ab_seed));
        Self::start_inner(registry, None, None, config, addr)
    }

    /// [`Server::start`] with a graph write path: `POST /update` routes
    /// appends and refresh ticks into `updater`, `/metrics` reports its
    /// committed epoch, and a refresh eagerly invalidates the cached
    /// subgraphs of users whose PPR top-K changed. `updater` must be backed
    /// by the same graph state as `service` (in practice both are one
    /// `kucnet_dynamic::DynamicService`).
    pub fn start_dynamic(
        service: Arc<dyn ScoreService>,
        updater: Arc<dyn GraphUpdater>,
        config: ServeConfig,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<ServerHandle> {
        let registry = Arc::new(ModelRegistry::single(service, config.ab_seed));
        Self::start_inner(registry, None, Some(updater), config, addr)
    }

    /// The fully explicit constructor: a pre-built (possibly multi-variant)
    /// [`ModelRegistry`], an optional checkpoint `loader` backing
    /// `POST /admin/reload`, and an optional graph `updater` backing
    /// `POST /update`. `registry` must have at least one variant.
    pub fn start_full(
        registry: Arc<ModelRegistry>,
        loader: Option<Arc<dyn ModelLoader>>,
        updater: Option<Arc<dyn GraphUpdater>>,
        config: ServeConfig,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<ServerHandle> {
        Self::start_inner(registry, loader, updater, config, addr)
    }

    fn start_inner(
        registry: Arc<ModelRegistry>,
        loader: Option<Arc<dyn ModelLoader>>,
        updater: Option<Arc<dyn GraphUpdater>>,
        config: ServeConfig,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<ServerHandle> {
        if registry.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "the model registry has no variants registered",
            ));
        }
        if config.quantized {
            // Opt every capable variant into the quantized path before any
            // traffic lands; variants without an i8 companion keep f32.
            for (name, _) in registry.weights() {
                let _ = registry.set_quantized(&name, true);
            }
        }
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;

        let cache = Arc::new(SubgraphCache::new(config.cache_capacity));
        let batcher = Batcher::start(Arc::clone(&registry), Arc::clone(&cache), &config);
        let shared = Arc::new(Shared {
            registry,
            cache,
            batcher,
            metrics: ServeMetrics::new(),
            config,
            loader,
            updater,
        });

        let running = Arc::new(AtomicBool::new(true));
        let accept_running = Arc::clone(&running);
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            run_accept_loop(&listener, &accept_running, &accept_shared);
        });

        Ok(ServerHandle {
            addr: local_addr,
            running,
            shared,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }
}

/// A running server: address, live metrics, and graceful shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    running: Arc<AtomicBool>,
    shared: Arc<Shared>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl ServerHandle {
    /// The bound socket address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of request counters and latency percentiles.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Snapshot of subgraph-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Snapshot of micro-batching counters.
    pub fn batcher_stats(&self) -> BatcherStats {
        self.shared.batcher.stats()
    }

    /// The live model registry — for in-process hot-swaps
    /// ([`ModelRegistry::reload`]) and weight changes without going through
    /// HTTP.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// Stops accepting connections, drains the scoring pipeline, and joins
    /// all threads. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.running.swap(false, Ordering::SeqCst) {
            // Wake the blocking accept() with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(handle) = self.accept_thread.lock().take() {
            let _ = handle.join();
        }
        self.shared.batcher.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accepts connections until `running` flips false, handling each on its
/// own thread; finished handler threads are reaped as the loop goes.
///
/// Connections past `max_connections` are shed with a `503` written
/// directly from the accept thread — no handler thread is spawned for
/// them, so a flood of idle clients cannot exhaust threads or memory.
fn run_accept_loop(listener: &TcpListener, running: &Arc<AtomicBool>, shared: &Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    let active = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        if !running.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        let admitted = active
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < shared.config.max_connections.max(1)).then(|| n + 1)
            })
            .is_ok();
        if !admitted {
            shared.metrics.record_shed();
            shared.metrics.record_error();
            shed_connection(&mut stream, shared);
            continue;
        }
        let shared = Arc::clone(shared);
        let active = Arc::clone(&active);
        handlers.retain(|h| !h.is_finished());
        handlers.push(std::thread::spawn(move || {
            handle_connection(stream, &shared);
            active.fetch_sub(1, Ordering::SeqCst);
        }));
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// Answers a shed connection with a 503 and drains it briefly before
/// closing. The drain matters: closing with unread request bytes in the
/// receive buffer turns the close into a TCP RST, which can destroy the
/// 503 in flight before the client reads it. The drain is tightly bounded
/// (small timeout, few KB) so a hostile sender cannot stall the accept
/// thread for long.
fn shed_connection(stream: &mut TcpStream, shared: &Shared) {
    let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
    respond_error(stream, &ServeError::Overloaded);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let mut sink = [0u8; 1024];
    for _ in 0..8 {
        match std::io::Read::read(stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Serves exactly one request on `stream` and closes it. Read *and* write
/// timeouts are symmetric: a client that stalls reading its response (a
/// half-open or deliberately slow reader) errors out of `write_response`
/// instead of blocking the handler thread forever.
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
    let request = {
        let mut reader = BufReader::new(&mut stream);
        http_request(&mut reader)
    };
    let request = match request {
        Ok(request) => request,
        Err(err) => {
            shared.metrics.record_error();
            respond_error(&mut stream, &err);
            return;
        }
    };

    match (request.method.as_str(), route_of(&request.path)) {
        ("GET", "/healthz") => {
            let _ = write_response(&mut stream, 200, "text/plain", "ok\n");
        }
        ("GET", "/metrics") => {
            let epoch = shared.updater.as_ref().map_or(0, |u| u.epoch());
            let mut body =
                shared.metrics.render(&shared.cache.stats(), &shared.batcher.stats(), epoch);
            body.push_str(&shared.registry.render_metrics());
            let _ = write_response(&mut stream, 200, "text/plain", &body);
        }
        ("POST", "/recommend") => {
            shared.metrics.record_request();
            let started = Instant::now();
            match handle_recommend(&request.body, shared) {
                Ok((user, top_k, reply)) => {
                    // audit: allow(no-lossy-cast) — a latency past u64::MAX µs is unreachable; saturating is the right histogram clamp
                    let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                    shared.metrics.record_latency_us(micros);
                    shared.registry.record_request(reply.variant);
                    shared.registry.record_latency_us(reply.variant, micros);
                    let body = render_ranking(user, top_k, &reply);
                    let _ = write_response(&mut stream, 200, "application/json", &body);
                }
                Err(err) => {
                    if err == ServeError::Overloaded {
                        shared.metrics.record_shed();
                    }
                    shared.metrics.record_error();
                    respond_error(&mut stream, &err);
                }
            }
        }
        ("POST", "/explain") => match handle_explain(&request.body, shared) {
            Ok(body) => {
                let _ = write_response(&mut stream, 200, "application/json", &body);
            }
            Err(err) => {
                shared.metrics.record_error();
                respond_error(&mut stream, &err);
            }
        },
        ("POST", "/admin/reload") => match handle_reload(&request.body, shared) {
            Ok(body) => {
                let _ = write_response(&mut stream, 200, "application/json", &body);
            }
            Err(err) => {
                shared.metrics.record_error();
                respond_error(&mut stream, &err);
            }
        },
        ("POST", "/admin/ab") => match handle_ab(&request.body, shared) {
            Ok(body) => {
                let _ = write_response(&mut stream, 200, "application/json", &body);
            }
            Err(err) => {
                shared.metrics.record_error();
                respond_error(&mut stream, &err);
            }
        },
        ("POST", "/update") => match handle_update(&request.body, shared) {
            Ok(body) => {
                shared.metrics.record_update();
                let _ = write_response(&mut stream, 200, "application/json", &body);
            }
            Err(err) => {
                shared.metrics.record_error();
                respond_error(&mut stream, &err);
            }
        },
        (
            _,
            "/healthz" | "/metrics" | "/recommend" | "/update" | "/explain" | "/admin/reload"
            | "/admin/ab",
        ) => {
            shared.metrics.record_error();
            let body = "{\"error\":\"method not allowed\"}";
            let _ = write_response(&mut stream, 405, "application/json", body);
        }
        _ => {
            shared.metrics.record_error();
            let body = "{\"error\":\"no such route\"}";
            let _ = write_response(&mut stream, 404, "application/json", body);
        }
    }
}

/// Strips the query string off a request target.
fn route_of(path: &str) -> &str {
    path.split_once('?').map_or(path, |(route, _)| route)
}

/// Validates a `/recommend` body and scores it through the batcher.
fn handle_recommend(body: &[u8], shared: &Shared) -> Result<(u64, usize, ScoredReply), ServeError> {
    let mut user: Option<u64> = None;
    let mut top_k: u64 = DEFAULT_TOP_K;
    for (key, value) in parse_flat_u64_json(body)? {
        match key.as_str() {
            "user" => user = Some(value),
            "top_k" => top_k = value,
            other => {
                return Err(ServeError::BadRequest(format!("unknown field `{other}`")));
            }
        }
    }
    let user = user.ok_or_else(|| ServeError::BadRequest("missing field `user`".to_string()))?;

    if top_k == 0 {
        return Err(ServeError::BadRequest("top_k must be at least 1".to_string()));
    }
    // audit: allow(no-lossy-cast) — widening a config bound for comparison; saturation only loosens the check
    let max_top_k = u64::try_from(shared.config.max_top_k).unwrap_or(u64::MAX);
    if top_k > max_top_k {
        return Err(ServeError::BadRequest(format!("top_k must be at most {max_top_k}")));
    }
    let user_id = validate_user(user, shared)?;

    // audit: allow(no-lossy-cast) — top_k is already bounded by max_top_k; the min() clamp makes saturation harmless
    let k = usize::try_from(top_k).unwrap_or(usize::MAX).min(shared.registry.n_items());
    let reply = shared.batcher.submit(user_id, k)?;
    Ok((user, k, reply))
}

/// Checks `user` against the registry's user space (404 when out of range).
fn validate_user(user: u64, shared: &Shared) -> Result<UserId, ServeError> {
    // audit: allow(no-lossy-cast) — widening the user count for comparison; saturation only loosens the check
    let n_users = u64::try_from(shared.registry.n_users()).unwrap_or(u64::MAX);
    if user >= n_users {
        return Err(ServeError::UnknownUser(user));
    }
    Ok(UserId(u32::try_from(user).map_err(|_| ServeError::UnknownUser(user))?))
}

/// Validates a `POST /explain` body and runs the explanation on the live
/// model the user's A/B assignment routes to.
///
/// Body: `{"user": u, "item": i, "threshold_milli": t}` — `threshold_milli`
/// is the attention cutoff in thousandths (default 500 = the paper's 0.5;
/// at most 1000). Routing and model pinning follow the exact `/recommend`
/// path, so the explanation always comes from the same model generation
/// that would have scored the request.
fn handle_explain(body: &[u8], shared: &Shared) -> Result<String, ServeError> {
    let mut user: Option<u64> = None;
    let mut item: Option<u64> = None;
    let mut threshold_milli: u64 = DEFAULT_THRESHOLD_MILLI;
    for (key, value) in parse_flat_u64_json(body)? {
        match key.as_str() {
            "user" => user = Some(value),
            "item" => item = Some(value),
            "threshold_milli" => threshold_milli = value,
            other => {
                return Err(ServeError::BadRequest(format!("unknown field `{other}`")));
            }
        }
    }
    let user = user.ok_or_else(|| ServeError::BadRequest("missing field `user`".to_string()))?;
    let item = item.ok_or_else(|| ServeError::BadRequest("missing field `item`".to_string()))?;
    if threshold_milli > 1000 {
        return Err(ServeError::BadRequest("threshold_milli must be at most 1000".to_string()));
    }
    // Exact integer → f32 conversion (no lossy cast): milli ≤ 1000 fits u16.
    let milli = u16::try_from(threshold_milli)
        .map_err(|_| ServeError::BadRequest("threshold_milli must be at most 1000".to_string()))?;
    let threshold = f32::from(milli) / 1000.0;
    let user_id = validate_user(user, shared)?;
    // audit: allow(no-lossy-cast) — widening the item count for comparison; saturation only loosens the check
    let n_items = u64::try_from(shared.registry.n_items()).unwrap_or(u64::MAX);
    if item >= n_items {
        return Err(ServeError::BadRequest(format!("item {item} is out of range")));
    }
    let item = u32::try_from(item)
        .map_err(|_| ServeError::BadRequest(format!("item {item} is out of range")))?;

    let pin = shared.registry.pin();
    let model = pin.model_for(user_id);
    let out = model.service().explain_item(user_id, item, threshold).ok_or_else(|| {
        ServeError::BadRequest(format!("variant `{}` does not support explanations", model.name()))
    })?;
    Ok(format!(
        "{{\"user\":{user},\"item\":{item},\"variant\":\"{}\",\"model_version\":{},\
         \"threshold_milli\":{threshold_milli},\"n_edges\":{},\"dot\":\"{}\",\"text\":\"{}\"}}",
        json_escape(model.name()),
        model.version(),
        out.n_edges,
        json_escape(&out.dot),
        json_escape(&out.text)
    ))
}

/// Validates a `POST /admin/reload` body and hot-swaps one variant's model
/// from a checkpoint via the configured [`ModelLoader`].
fn handle_reload(body: &[u8], shared: &Shared) -> Result<String, ServeError> {
    let Some(loader) = shared.loader.as_ref() else {
        return Err(ServeError::BadRequest(
            "this deployment has no checkpoint loader configured".to_string(),
        ));
    };
    let mut variant: Option<String> = None;
    let mut path: Option<String> = None;
    for (key, value) in parse_flat_str_json(body)? {
        match key.as_str() {
            "variant" => variant = Some(value),
            "path" => path = Some(value),
            other => {
                return Err(ServeError::BadRequest(format!("unknown field `{other}`")));
            }
        }
    }
    let variant =
        variant.ok_or_else(|| ServeError::BadRequest("missing field `variant`".to_string()))?;
    let path = path.ok_or_else(|| ServeError::BadRequest("missing field `path`".to_string()))?;
    let service = loader.load(&variant, &path).map_err(ServeError::BadRequest)?;
    let version = shared.registry.reload(&variant, service).map_err(ServeError::BadRequest)?;
    Ok(format!(
        "{{\"op\":\"reload\",\"variant\":\"{}\",\"model_version\":{version}}}",
        json_escape(&variant)
    ))
}

/// Validates a `POST /admin/ab` body (`{"<variant>": <weight>,
/// "quant.<variant>": 0|1, ...}`) and atomically applies it: plain keys
/// replace routing weights, `quant.`-prefixed keys flip the named variant
/// between the f32 (`0`) and quantized (`1`) scoring paths. Everything is
/// validated before anything is applied, so a bad key or an unsupported
/// precision request leaves both the weights and the precision flags
/// untouched.
fn handle_ab(body: &[u8], shared: &Shared) -> Result<String, ServeError> {
    let pairs = parse_flat_u64_json(body)?;
    if pairs.is_empty() {
        return Err(ServeError::BadRequest(
            "body must map at least one variant name to a weight".to_string(),
        ));
    }
    let mut weight_pairs: Vec<(String, u64)> = Vec::new();
    let mut quant_pairs: Vec<(String, bool)> = Vec::new();
    for (key, value) in pairs {
        if let Some(variant) = key.strip_prefix("quant.") {
            if value > 1 {
                return Err(ServeError::BadRequest(format!(
                    "`{key}` must be 0 (f32) or 1 (quantized)"
                )));
            }
            quant_pairs.push((variant.to_string(), value == 1));
        } else {
            weight_pairs.push((key, value));
        }
    }
    // Pre-validate the weight names so a late weight failure cannot land
    // after the precision toggles already applied.
    let known = shared.registry.weights();
    for (name, _) in &weight_pairs {
        if !known.iter().any(|(n, _)| n == name) {
            return Err(ServeError::BadRequest(format!("unknown variant `{name}`")));
        }
    }
    shared.registry.set_quantized_many(&quant_pairs).map_err(ServeError::BadRequest)?;
    shared.registry.set_weights(&weight_pairs).map_err(ServeError::BadRequest)?;
    let mut body = String::from("{\"op\":\"ab\",\"weights\":{");
    for (i, (name, weight)) in shared.registry.weights().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!("\"{}\":{weight}", json_escape(name)));
    }
    body.push_str("},\"quantized\":{");
    for (i, (name, on)) in shared.registry.quantized_flags().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!("\"{}\":{}", json_escape(name), u64::from(*on)));
    }
    body.push_str("}}");
    Ok(body)
}

/// Validates a `POST /update` body and applies it through the updater.
///
/// Accepted shapes (flat JSON objects of unsigned integers):
///
/// - `{"user": u, "item": i}` — log an interaction append;
/// - `{"head": h, "rel": r, "tail": t}` — log a KG-triple append
///   (node-id space);
/// - `{"refresh": 1}` — fold all pending appends into a new graph epoch.
fn handle_update(body: &[u8], shared: &Shared) -> Result<String, ServeError> {
    let Some(updater) = shared.updater.as_ref() else {
        return Err(ServeError::BadRequest("this deployment serves a static graph".to_string()));
    };
    let mut user: Option<u64> = None;
    let mut item: Option<u64> = None;
    let mut head: Option<u64> = None;
    let mut rel: Option<u64> = None;
    let mut tail: Option<u64> = None;
    let mut refresh = false;
    for (key, value) in parse_flat_u64_json(body)? {
        match key.as_str() {
            "user" => user = Some(value),
            "item" => item = Some(value),
            "head" => head = Some(value),
            "rel" => rel = Some(value),
            "tail" => tail = Some(value),
            "refresh" => refresh = value != 0,
            other => {
                return Err(ServeError::BadRequest(format!("unknown field `{other}`")));
            }
        }
    }
    match (user, item, head, rel, tail, refresh) {
        (Some(user), Some(item), None, None, None, false) => {
            let ack = updater.append_interaction(user, item)?;
            Ok(format!(
                "{{\"op\":\"append_interaction\",\"epoch\":{},\"pending\":{},\"deduped\":{}}}",
                ack.epoch, ack.pending, ack.deduped
            ))
        }
        (None, None, Some(head), Some(rel), Some(tail), false) => {
            let ack = updater.append_triple(head, rel, tail)?;
            Ok(format!(
                "{{\"op\":\"append_triple\",\"epoch\":{},\"pending\":{},\"deduped\":{}}}",
                ack.epoch, ack.pending, ack.deduped
            ))
        }
        (None, None, None, None, None, true) => {
            let ack = updater.refresh_tick()?;
            // Eagerly drop cached subgraphs of users whose PPR top-K
            // changed; untouched residents stay warm across the epoch.
            let mut invalidated = 0usize;
            for &u in &ack.changed_users {
                if shared.cache.invalidate_user(UserId(u)) {
                    invalidated += 1;
                }
            }
            Ok(format!(
                "{{\"op\":\"refresh\",\"epoch\":{},\"applied\":{},\"recomputed\":{},\
                 \"changed\":{},\"compacted\":{},\"invalidated\":{invalidated}}}",
                ack.epoch,
                ack.applied,
                ack.recomputed,
                ack.changed_users.len(),
                ack.compacted
            ))
        }
        _ => Err(ServeError::BadRequest(
            "body must be {\"user\",\"item\"}, {\"head\",\"rel\",\"tail\"}, or {\"refresh\":1}"
                .to_string(),
        )),
    }
}

/// Renders the `/recommend` success body with model attribution.
fn render_ranking(user: u64, top_k: usize, reply: &ScoredReply) -> String {
    let mut body = format!(
        "{{\"user\":{user},\"top_k\":{top_k},\"variant\":\"{}\",\"model_version\":{},\"items\":[",
        json_escape(&reply.variant_name),
        reply.model_version
    );
    for (i, (item, score)) in reply.ranking.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!("{{\"item\":{item},\"score\":{score}}}"));
    }
    body.push_str("]}");
    body
}

/// Writes a JSON error body with the status of `err`.
fn respond_error(stream: &mut TcpStream, err: &ServeError) {
    let body = format!("{{\"error\":\"{}\"}}", json_escape(&err.to_string()));
    let _ = write_response(stream, err.status(), "application/json", &body);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_of_strips_query() {
        assert_eq!(route_of("/metrics?verbose=1"), "/metrics");
        assert_eq!(route_of("/recommend"), "/recommend");
    }

    #[test]
    fn ranking_renders_as_json() {
        let reply = ScoredReply {
            variant: 0,
            variant_name: Arc::from("default"),
            model_version: 4,
            ranking: vec![(7, 1.5), (2, 0.25)],
        };
        let body = render_ranking(3, 2, &reply);
        assert_eq!(
            body,
            "{\"user\":3,\"top_k\":2,\"variant\":\"default\",\"model_version\":4,\
             \"items\":[{\"item\":7,\"score\":1.5},{\"item\":2,\"score\":0.25}]}"
        );
    }
}
