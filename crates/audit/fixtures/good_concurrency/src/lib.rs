//! Deliberately *clean* counterpart to the `bad_concurrency` trees: every
//! pattern here skirts close to a determinism rule but is order-safe, so
//! the whole file must lint with zero findings under all rules. Not part of
//! the workspace walk; linted only via `--lint-dir` and the audit crate's
//! own tests.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Mutex;
use std::time::Instant;

/// BTree iteration is canonically ordered — never flagged.
pub fn btree_iteration(scores: &BTreeMap<u64, f32>) -> Vec<f32> {
    let mut out = Vec::new();
    for (_, s) in scores.iter() {
        out.push(*s);
    }
    out
}

/// Keyed lookup never observes iteration order.
pub fn hash_lookup(counts: &HashMap<u64, u64>, key: u64) -> u64 {
    counts.get(&key).copied().unwrap_or(0)
}

/// `count` is an order-insensitive sink.
pub fn hash_count(counts: &HashMap<u64, u64>) -> usize {
    counts.values().count()
}

/// Hash keys are snapshotted and restored to canonical order before use.
pub fn sorted_keys(members: &HashSet<u64>) -> Vec<u64> {
    let mut keys: Vec<u64> = members.iter().copied().collect();
    keys.sort_unstable();
    keys
}

/// Order genuinely does not matter here, and the annotation says why.
pub fn annotated_fold(members: &HashSet<u64>, acc: &mut u64) {
    // #[allow(kucnet::unordered_iter)] — wrapping add is commutative, so every
    // iteration order produces the same accumulator.
    for v in members.iter() {
        *acc = acc.wrapping_add(*v);
    }
}

/// A sequential integer fold has no par context and no float accumulator.
pub fn plain_fold(xs: &[u64]) -> u64 {
    xs.iter().fold(0, |a, b| a + b)
}

/// Timing instrumentation is not an entropy source (no seed is derived).
pub fn timed_len(xs: &[u64]) -> (usize, u128) {
    let start = Instant::now();
    let n = xs.len();
    (n, start.elapsed().as_nanos())
}

/// Two locks, one global acquisition order everywhere.
pub struct Consistent {
    first: Mutex<Vec<u64>>,
    second: Mutex<u64>,
}

impl Consistent {
    /// Takes `first` then `second`.
    pub fn record(&self, v: u64) {
        if let Ok(mut f) = self.first.lock() {
            if let Ok(mut s) = self.second.lock() {
                f.push(v);
                *s += 1;
            }
        }
    }

    /// Also takes `first` then `second` — same order, no cycle.
    pub fn snapshot(&self) -> u64 {
        if let Ok(f) = self.first.lock() {
            if let Ok(s) = self.second.lock() {
                return *s + f.len() as u64;
            }
        }
        0
    }
}
