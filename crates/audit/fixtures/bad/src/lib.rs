//! Deliberately broken source used to verify the audit linter: exactly one
//! violation per rule. This file is NOT part of the workspace walk (it lives
//! outside any crate's `src/`) and is only linted via `--lint-dir` and the
//! audit crate's own tests.

/// Trips `no-panic`: unwrap in library code without an allow comment.
pub fn trips_no_panic(x: Option<u32>) -> u32 {
    x.unwrap()
}

/// Trips `no-lossy-cast`: silent narrowing of a node index.
pub fn trips_no_lossy_cast(position: usize) -> u32 {
    position as u32
}

/// Trips `no-lossy-cast` via the saturating-fallback idiom: a failed
/// conversion silently becomes a huge in-band value.
pub fn trips_saturating_fallback(count: u64) -> u32 {
    u32::try_from(count).unwrap_or(u32::MAX)
}

pub fn trips_doc_pub_fn() {}
