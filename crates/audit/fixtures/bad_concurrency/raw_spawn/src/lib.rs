//! Seeded violation for `no-raw-spawn`: exactly one finding. Not part of
//! the workspace walk; linted only via `--lint-dir` and the audit crate's
//! own tests.

use std::thread;

/// Spawns an unmanaged OS thread outside the kucnet-par pool.
pub fn trips_raw_spawn() -> thread::JoinHandle<()> {
    thread::spawn(|| {})
}
