//! Seeded violation for `no-entropy`: exactly one finding. Not part of the
//! workspace walk; linted only via `--lint-dir` and the audit crate's own
//! tests.

use std::time::SystemTime;

/// Derives a seed from the wall clock — different every run.
pub fn trips_entropy() -> u64 {
    match SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_nanos() as u64,
        Err(_) => 0,
    }
}
