//! Seeded violation for `lock-order`: exactly one finding (the AB/BA pair
//! is reported once). Not part of the workspace walk; linted only via
//! `--lint-dir` and the audit crate's own tests.

use std::sync::Mutex;

/// Two locks with no agreed acquisition order.
pub struct State {
    queue: Mutex<Vec<u64>>,
    stats: Mutex<u64>,
}

impl State {
    /// Takes `queue` then `stats`.
    pub fn push(&self, v: u64) {
        if let Ok(mut q) = self.queue.lock() {
            if let Ok(mut s) = self.stats.lock() {
                q.push(v);
                *s += 1;
            }
        }
    }

    /// Takes `stats` then `queue` — the reverse order: deadlock shape.
    pub fn report(&self) -> u64 {
        if let Ok(s) = self.stats.lock() {
            if let Ok(q) = self.queue.lock() {
                return *s + q.len() as u64;
            }
        }
        0
    }
}
