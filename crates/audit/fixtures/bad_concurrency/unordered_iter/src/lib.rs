//! Seeded violation for `no-unordered-iter`: exactly one finding. Not part
//! of the workspace walk; linted only via `--lint-dir` and the audit
//! crate's own tests.

use std::collections::HashMap;

/// Leaks the hash map's nondeterministic iteration order into the output.
pub fn trips_unordered_iter(counts: &HashMap<u64, u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for (k, v) in counts.iter() {
        out.push(k + v);
    }
    out
}
