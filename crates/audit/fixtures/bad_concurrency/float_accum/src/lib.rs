//! Seeded violation for `no-float-accum-order`: exactly one finding. Not
//! part of the workspace walk; linted only via `--lint-dir` and the audit
//! crate's own tests.

use kucnet_par::{par_map, Pool};

/// Sums per-shard float partials without an ordered reduction.
pub fn trips_float_accum(pool: &Pool, xs: &[f32]) -> f32 {
    let partials = par_map(pool, xs, |x| x * 2.0);
    partials.iter().sum::<f32>()
}
