//! A minimal Rust tokenizer, sufficient for line-accurate lint rules.
//!
//! The lexer distinguishes exactly what the rules need: identifiers,
//! punctuation, literals, lifetimes, and the three comment flavors (line,
//! block, doc). It understands string/char/raw-string syntax well enough to
//! never mistake their contents for code, which is the property the whole
//! linter rests on.

/// Classification of one token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `as`, `pub`, ...).
    Ident,
    /// Lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// String, char, byte, or numeric literal.
    Literal,
    /// Single punctuation character.
    Punct(char),
    /// `// ...` comment (text excludes the slashes).
    LineComment,
    /// `/* ... */` comment.
    BlockComment,
    /// `/// ...`, `//! ...`, `/** ... */`, or `/*! ... */` doc comment.
    DocComment,
}

/// One token with its source line (1-based).
#[derive(Clone, Debug)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (comment text excludes the comment markers).
    pub text: String,
    /// 1-based line where the token starts.
    pub line: u32,
}

impl Tok {
    /// True for the comment kinds (which most rules skip over).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment | TokKind::DocComment)
    }
}

/// Tokenizes `source`. Unterminated strings/comments are tolerated (the rest
/// of the file becomes one token) so that the linter degrades gracefully on
/// malformed input instead of crashing.
pub fn tokenize(source: &str) -> Vec<Tok> {
    Lexer { chars: source.chars().collect(), pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                '\'' => self.char_or_lifetime(),
                'r' | 'b' if self.raw_string_ahead() => self.raw_string(),
                c if c.is_alphabetic() || c == '_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                c => {
                    if c == '\n' {
                        self.line += 1;
                    } else if !c.is_whitespace() {
                        self.push_here(TokKind::Punct(c), c.to_string());
                    }
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn push_here(&mut self, kind: TokKind, text: String) {
        self.out.push(Tok { kind, text, line: self.line });
    }

    fn bump_tracking_newline(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += 1;
        Some(c)
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        // `///` is a doc comment but `////...` is not; `//!` is inner doc.
        let third = self.peek(2);
        let kind = match third {
            Some('/') if self.peek(3) != Some('/') => TokKind::DocComment,
            Some('!') => TokKind::DocComment,
            _ => TokKind::LineComment,
        };
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .trim_start_matches('/')
            .trim_start_matches('!')
            .to_string();
        self.push_here(kind, text);
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let kind = match self.peek(2) {
            // `/**/` is empty, not doc; `/***` is not doc either.
            Some('*') if self.peek(3) != Some('*') && self.peek(3) != Some('/') => {
                TokKind::DocComment
            }
            Some('!') => TokKind::DocComment,
            _ => TokKind::BlockComment,
        };
        let start = self.pos;
        self.pos += 2;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(_), _) => {
                    self.bump_tracking_newline();
                }
                (None, _) => break,
            }
        }
        let text: String = self.chars[start..self.pos.min(self.chars.len())].iter().collect();
        self.out.push(Tok { kind, text, line });
    }

    fn string_literal(&mut self) {
        let line = self.line;
        self.pos += 1; // opening quote
        while let Some(c) = self.bump_tracking_newline() {
            match c {
                '\\' => {
                    self.bump_tracking_newline();
                }
                '"' => break,
                _ => {}
            }
        }
        self.out.push(Tok { kind: TokKind::Literal, text: String::new(), line });
    }

    fn char_or_lifetime(&mut self) {
        // `'a`, `'static` (lifetime) vs `'x'`, `'\n'` (char literal): a
        // lifetime is a quote + identifier NOT followed by a closing quote.
        let line = self.line;
        let is_lifetime = matches!(self.peek(1), Some(c) if c.is_alphabetic() || c == '_') && {
            let mut k = 2;
            while matches!(self.peek(k), Some(c) if c.is_alphanumeric() || c == '_') {
                k += 1;
            }
            self.peek(k) != Some('\'')
        };
        if is_lifetime {
            self.pos += 1;
            let start = self.pos;
            while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
                self.pos += 1;
            }
            let text: String = self.chars[start..self.pos].iter().collect();
            self.out.push(Tok { kind: TokKind::Lifetime, text, line });
        } else {
            self.pos += 1; // opening quote
            while let Some(c) = self.bump_tracking_newline() {
                match c {
                    '\\' => {
                        self.bump_tracking_newline();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.out.push(Tok { kind: TokKind::Literal, text: String::new(), line });
        }
    }

    /// True when the cursor sits on `r"`, `r#`, `b"`, `br"`, or `br#` — the
    /// prefixes of raw/byte strings (as opposed to identifiers starting with
    /// `r`/`b`).
    fn raw_string_ahead(&self) -> bool {
        let after_prefix = |k: usize| -> bool { matches!(self.peek(k), Some('"') | Some('#')) };
        match self.peek(0) {
            Some('r') => after_prefix(1),
            Some('b') => match self.peek(1) {
                Some('"') => true,
                Some('r') => after_prefix(2),
                _ => false,
            },
            _ => false,
        }
    }

    fn raw_string(&mut self) {
        let line = self.line;
        // Skip prefix letters.
        while matches!(self.peek(0), Some('r') | Some('b')) {
            self.pos += 1;
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.peek(0) != Some('"') {
            // Not actually a string (e.g. `b#` macro garbage): emit nothing
            // and resume after the consumed chars.
            return;
        }
        self.pos += 1;
        'scan: while let Some(c) = self.bump_tracking_newline() {
            if c == '"' {
                if hashes == 0 {
                    break;
                }
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'scan;
                    }
                }
                self.pos += hashes;
                break;
            }
        }
        self.out.push(Tok { kind: TokKind::Literal, text: String::new(), line });
    }

    fn ident(&mut self) {
        let start = self.pos;
        while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push_here(TokKind::Ident, text);
    }

    fn number(&mut self) {
        let line = self.line;
        while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_' || c == '.') {
            // Don't swallow `..` range punctuation or method calls on ints.
            if self.peek(0) == Some('.') && !matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                break;
            }
            self.pos += 1;
        }
        self.out.push(Tok { kind: TokKind::Literal, text: String::new(), line });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src).into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = r#"
            let a = "x.unwrap()"; // .unwrap() in comment
            /* panic!("no") */
            let b = 'x';
        "#;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn real_unwrap_is_visible() {
        let toks = tokenize("foo.unwrap();");
        let unwrap = toks.iter().find(|t| t.text == "unwrap").expect("unwrap token");
        assert_eq!(unwrap.kind, TokKind::Ident);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes: Vec<&Tok> = toks.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 3);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
    }

    #[test]
    fn char_literal_does_not_eat_the_file() {
        let toks = tokenize("let c = 'x'; foo.unwrap();");
        assert!(toks.iter().any(|t| t.text == "unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = tokenize(r##"let s = r#"panic!("inner")"#; bar()"##);
        assert!(!toks.iter().any(|t| t.text == "panic"));
        assert!(toks.iter().any(|t| t.text == "bar"));
    }

    #[test]
    fn doc_comments_classified() {
        let toks = tokenize("/// docs\n//! inner\n// plain\n//// not doc\nfn f() {}");
        let kinds: Vec<&TokKind> = toks.iter().map(|t| &t.kind).collect();
        assert_eq!(kinds[0], &TokKind::DocComment);
        assert_eq!(kinds[1], &TokKind::DocComment);
        assert_eq!(kinds[2], &TokKind::LineComment);
        assert_eq!(kinds[3], &TokKind::LineComment);
    }

    #[test]
    fn nested_block_comments() {
        let toks = tokenize("/* outer /* inner */ still comment */ fn g() {}");
        assert!(toks.iter().any(|t| t.text == "g"));
        assert!(!toks.iter().any(|t| t.text == "inner"));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = tokenize("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let toks = tokenize("let s = \"one\ntwo\";\nafter");
        let after = toks.iter().find(|t| t.text == "after").expect("after token");
        assert_eq!(after.line, 3);
    }
}
