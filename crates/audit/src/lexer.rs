//! A minimal Rust tokenizer, sufficient for line-accurate lint rules.
//!
//! The lexer distinguishes exactly what the rules need: identifiers,
//! punctuation, literals, lifetimes, the `::` path separator, and the three
//! comment flavors (line, block, doc). It understands string/char/raw-string
//! syntax well enough to never mistake their contents for code, which is the
//! property the whole linter rests on.
//!
//! On top of the raw token stream, three structural helpers serve the
//! concurrency rules: [`path_at`] reassembles a `a::b::c` path around any of
//! its segments, [`turbofish_after`] reads the type arguments of a
//! `::<...>` turbofish, and [`attr_allow_rules`] parses
//! `#[allow(kucnet::<rule>)]` comment-annotations.

/// Classification of one token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `as`, `pub`, ...).
    Ident,
    /// Lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// String, char, byte, or numeric literal (numeric literals keep their
    /// text, e.g. `"1.0f32"`; string/char literal text is discarded).
    Literal,
    /// The `::` path separator, merged into one token.
    PathSep,
    /// Single punctuation character.
    Punct(char),
    /// `// ...` comment (text excludes the slashes).
    LineComment,
    /// `/* ... */` comment.
    BlockComment,
    /// `/// ...`, `//! ...`, `/** ... */`, or `/*! ... */` doc comment.
    DocComment,
}

/// One token with its source line (1-based).
#[derive(Clone, Debug)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (comment text excludes the comment markers).
    pub text: String,
    /// 1-based line where the token starts.
    pub line: u32,
}

impl Tok {
    /// True for the comment kinds (which most rules skip over).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment | TokKind::DocComment)
    }
}

/// Tokenizes `source`. Unterminated strings/comments are tolerated (the rest
/// of the file becomes one token) so that the linter degrades gracefully on
/// malformed input instead of crashing.
pub fn tokenize(source: &str) -> Vec<Tok> {
    Lexer { chars: source.chars().collect(), pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                '\'' => self.char_or_lifetime(),
                'r' | 'b' if self.raw_string_ahead() => self.raw_string(),
                ':' if self.peek(1) == Some(':') => {
                    self.push_here(TokKind::PathSep, "::".to_string());
                    self.pos += 2;
                }
                c if c.is_alphabetic() || c == '_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                c => {
                    if c == '\n' {
                        self.line += 1;
                    } else if !c.is_whitespace() {
                        self.push_here(TokKind::Punct(c), c.to_string());
                    }
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn push_here(&mut self, kind: TokKind, text: String) {
        self.out.push(Tok { kind, text, line: self.line });
    }

    fn bump_tracking_newline(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += 1;
        Some(c)
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        // `///` is a doc comment but `////...` is not; `//!` is inner doc.
        let third = self.peek(2);
        let kind = match third {
            Some('/') if self.peek(3) != Some('/') => TokKind::DocComment,
            Some('!') => TokKind::DocComment,
            _ => TokKind::LineComment,
        };
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .trim_start_matches('/')
            .trim_start_matches('!')
            .to_string();
        self.push_here(kind, text);
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let kind = match self.peek(2) {
            // `/**/` is empty, not doc; `/***` is not doc either.
            Some('*') if self.peek(3) != Some('*') && self.peek(3) != Some('/') => {
                TokKind::DocComment
            }
            Some('!') => TokKind::DocComment,
            _ => TokKind::BlockComment,
        };
        let start = self.pos;
        self.pos += 2;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(_), _) => {
                    self.bump_tracking_newline();
                }
                (None, _) => break,
            }
        }
        let text: String = self.chars[start..self.pos.min(self.chars.len())].iter().collect();
        self.out.push(Tok { kind, text, line });
    }

    fn string_literal(&mut self) {
        let line = self.line;
        self.pos += 1; // opening quote
        while let Some(c) = self.bump_tracking_newline() {
            match c {
                '\\' => {
                    self.bump_tracking_newline();
                }
                '"' => break,
                _ => {}
            }
        }
        self.out.push(Tok { kind: TokKind::Literal, text: String::new(), line });
    }

    fn char_or_lifetime(&mut self) {
        // `'a`, `'static` (lifetime) vs `'x'`, `'\n'` (char literal): a
        // lifetime is a quote + identifier NOT followed by a closing quote.
        let line = self.line;
        let is_lifetime = matches!(self.peek(1), Some(c) if c.is_alphabetic() || c == '_') && {
            let mut k = 2;
            while matches!(self.peek(k), Some(c) if c.is_alphanumeric() || c == '_') {
                k += 1;
            }
            self.peek(k) != Some('\'')
        };
        if is_lifetime {
            self.pos += 1;
            let start = self.pos;
            while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
                self.pos += 1;
            }
            let text: String = self.chars[start..self.pos].iter().collect();
            self.out.push(Tok { kind: TokKind::Lifetime, text, line });
        } else {
            self.pos += 1; // opening quote
            while let Some(c) = self.bump_tracking_newline() {
                match c {
                    '\\' => {
                        self.bump_tracking_newline();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.out.push(Tok { kind: TokKind::Literal, text: String::new(), line });
        }
    }

    /// True when the cursor sits on `r"`, `r#`, `b"`, `br"`, or `br#` — the
    /// prefixes of raw/byte strings (as opposed to identifiers starting with
    /// `r`/`b`).
    fn raw_string_ahead(&self) -> bool {
        let after_prefix = |k: usize| -> bool { matches!(self.peek(k), Some('"') | Some('#')) };
        match self.peek(0) {
            Some('r') => after_prefix(1),
            Some('b') => match self.peek(1) {
                Some('"') => true,
                Some('r') => after_prefix(2),
                _ => false,
            },
            _ => false,
        }
    }

    fn raw_string(&mut self) {
        let line = self.line;
        // Skip prefix letters.
        while matches!(self.peek(0), Some('r') | Some('b')) {
            self.pos += 1;
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.peek(0) != Some('"') {
            // Not actually a string (e.g. `b#` macro garbage): emit nothing
            // and resume after the consumed chars.
            return;
        }
        self.pos += 1;
        'scan: while let Some(c) = self.bump_tracking_newline() {
            if c == '"' {
                if hashes == 0 {
                    break;
                }
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'scan;
                    }
                }
                self.pos += hashes;
                break;
            }
        }
        self.out.push(Tok { kind: TokKind::Literal, text: String::new(), line });
    }

    fn ident(&mut self) {
        let start = self.pos;
        while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push_here(TokKind::Ident, text);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_' || c == '.') {
            // Don't swallow `..` range punctuation or method calls on ints.
            if self.peek(0) == Some('.') && !matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                break;
            }
            self.pos += 1;
        }
        // Numeric literal text is retained: the float-accumulation rule needs
        // to tell `0.0`/`1f32` apart from integer fold seeds.
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out.push(Tok { kind: TokKind::Literal, text, line });
    }
}

/// Index of the next non-comment token after `i`, if any.
fn next_code(toks: &[Tok], i: usize) -> Option<usize> {
    toks.iter().enumerate().skip(i + 1).find(|(_, t)| !t.is_comment()).map(|(k, _)| k)
}

/// Index of the previous non-comment token before `i`, if any.
fn prev_code(toks: &[Tok], i: usize) -> Option<usize> {
    toks[..i].iter().enumerate().rev().find(|(_, t)| !t.is_comment()).map(|(k, _)| k)
}

/// Reassembles the full `a::b::c` path containing the identifier at `i`:
/// walks backwards over `Ident ::` pairs and forwards over `:: Ident` pairs
/// and returns every segment in source order. A lone identifier yields a
/// one-segment path; a non-identifier yields an empty one.
pub fn path_at(toks: &[Tok], i: usize) -> Vec<String> {
    if toks.get(i).map(|t| &t.kind) != Some(&TokKind::Ident) {
        return Vec::new();
    }
    let mut first = i;
    while let Some(sep) = prev_code(toks, first) {
        if toks[sep].kind != TokKind::PathSep {
            break;
        }
        match prev_code(toks, sep) {
            Some(p) if toks[p].kind == TokKind::Ident => first = p,
            _ => break,
        }
    }
    let mut segments = vec![toks[first].text.clone()];
    let mut cur = first;
    while let Some(sep) = next_code(toks, cur) {
        if toks[sep].kind != TokKind::PathSep {
            break;
        }
        match next_code(toks, sep) {
            Some(n) if toks[n].kind == TokKind::Ident => {
                segments.push(toks[n].text.clone());
                cur = n;
            }
            _ => break,
        }
    }
    segments
}

/// If the identifier at `i` is followed by a turbofish (`::<...>`), returns
/// the identifier texts inside the angle brackets (e.g. `sum::<f32>` yields
/// `["f32"]`, `collect::<BTreeMap<u32, Vec<f64>>>()` yields all four type
/// names). Returns `None` when no turbofish follows.
pub fn turbofish_after(toks: &[Tok], i: usize) -> Option<Vec<String>> {
    let sep = next_code(toks, i)?;
    if toks[sep].kind != TokKind::PathSep {
        return None;
    }
    let open = next_code(toks, sep)?;
    if toks[open].kind != TokKind::Punct('<') {
        return None;
    }
    let mut depth = 0usize;
    let mut names = Vec::new();
    for t in toks.iter().skip(open) {
        match &t.kind {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return Some(names);
                }
            }
            TokKind::Ident => names.push(t.text.clone()),
            _ => {}
        }
    }
    None // unterminated turbofish: treat as absent
}

/// Parses a `#[allow(kucnet::<rule>, ...)]` annotation out of one comment
/// line and returns the rule names (the `<rule>` segments). The annotation
/// lives in a comment because `kucnet` is not a registered tool attribute —
/// a literal `#[allow(kucnet::...)]` would be a hard rustc error — so the
/// rules re-lex the comment text through this helper instead.
pub fn attr_allow_rules(comment_line: &str) -> Vec<String> {
    let toks = tokenize(comment_line.trim_start().trim_start_matches('/'));
    let mut rules = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // Match `# [ allow (` then collect every `kucnet :: NAME` path.
        if toks[i].kind == TokKind::Punct('#')
            && matches!(next_code(&toks, i), Some(b) if toks[b].kind == TokKind::Punct('['))
        {
            let bracket = next_code(&toks, i).unwrap_or(i);
            if let Some(a) = next_code(&toks, bracket) {
                if toks[a].kind == TokKind::Ident && toks[a].text == "allow" {
                    for (k, t) in toks.iter().enumerate().skip(a) {
                        if t.kind == TokKind::Punct(']') {
                            break;
                        }
                        if t.kind == TokKind::Ident && t.text == "kucnet" {
                            let path = path_at(&toks, k);
                            if path.len() == 2 {
                                rules.push(path[1].clone());
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src).into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = r#"
            let a = "x.unwrap()"; // .unwrap() in comment
            /* panic!("no") */
            let b = 'x';
        "#;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn real_unwrap_is_visible() {
        let toks = tokenize("foo.unwrap();");
        let unwrap = toks.iter().find(|t| t.text == "unwrap").expect("unwrap token");
        assert_eq!(unwrap.kind, TokKind::Ident);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes: Vec<&Tok> = toks.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 3);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
    }

    #[test]
    fn char_literal_does_not_eat_the_file() {
        let toks = tokenize("let c = 'x'; foo.unwrap();");
        assert!(toks.iter().any(|t| t.text == "unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = tokenize(r##"let s = r#"panic!("inner")"#; bar()"##);
        assert!(!toks.iter().any(|t| t.text == "panic"));
        assert!(toks.iter().any(|t| t.text == "bar"));
    }

    #[test]
    fn doc_comments_classified() {
        let toks = tokenize("/// docs\n//! inner\n// plain\n//// not doc\nfn f() {}");
        let kinds: Vec<&TokKind> = toks.iter().map(|t| &t.kind).collect();
        assert_eq!(kinds[0], &TokKind::DocComment);
        assert_eq!(kinds[1], &TokKind::DocComment);
        assert_eq!(kinds[2], &TokKind::LineComment);
        assert_eq!(kinds[3], &TokKind::LineComment);
    }

    #[test]
    fn nested_block_comments() {
        let toks = tokenize("/* outer /* inner */ still comment */ fn g() {}");
        assert!(toks.iter().any(|t| t.text == "g"));
        assert!(!toks.iter().any(|t| t.text == "inner"));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = tokenize("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let toks = tokenize("let s = \"one\ntwo\";\nafter");
        let after = toks.iter().find(|t| t.text == "after").expect("after token");
        assert_eq!(after.line, 3);
    }

    #[test]
    fn path_separator_is_one_token() {
        let toks = tokenize("std::thread::spawn(f); a : b");
        let seps: Vec<&Tok> = toks.iter().filter(|t| t.kind == TokKind::PathSep).collect();
        assert_eq!(seps.len(), 2);
        // A lone `:` stays ordinary punctuation.
        assert!(toks.iter().any(|t| t.kind == TokKind::Punct(':')));
    }

    #[test]
    fn path_at_reassembles_full_path() {
        let toks = tokenize("let h = std::thread::spawn(f);");
        let thread = toks.iter().position(|t| t.text == "thread").expect("thread ident");
        assert_eq!(path_at(&toks, thread), vec!["std", "thread", "spawn"]);
        let lone = toks.iter().position(|t| t.text == "h").expect("h ident");
        assert_eq!(path_at(&toks, lone), vec!["h"]);
    }

    #[test]
    fn turbofish_types_extracted() {
        let toks = tokenize("v.iter().sum::<f32>()");
        let sum = toks.iter().position(|t| t.text == "sum").expect("sum ident");
        assert_eq!(turbofish_after(&toks, sum), Some(vec!["f32".to_string()]));

        let toks = tokenize("it.collect::<BTreeMap<u32, Vec<f64>>>()");
        let c = toks.iter().position(|t| t.text == "collect").expect("collect ident");
        let names = turbofish_after(&toks, c).expect("has turbofish");
        assert_eq!(names, vec!["BTreeMap", "u32", "Vec", "f64"]);

        let toks = tokenize("v.iter().sum()");
        let sum = toks.iter().position(|t| t.text == "sum").expect("sum ident");
        assert_eq!(turbofish_after(&toks, sum), None);
    }

    #[test]
    fn numeric_literal_text_retained() {
        let toks = tokenize("let x = 1.5f32 + 10_000;");
        let lits: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Literal).map(|t| t.text.as_str()).collect();
        assert_eq!(lits, vec!["1.5f32", "10_000"]);
    }

    #[test]
    fn allow_annotation_parsed_from_comment() {
        let line = "// #[allow(kucnet::unordered_iter)] — distinct-index writes";
        assert_eq!(attr_allow_rules(line), vec!["unordered_iter"]);
        let two = "// #[allow(kucnet::unordered_iter, kucnet::entropy)] — both";
        assert_eq!(attr_allow_rules(two), vec!["unordered_iter", "entropy"]);
        assert!(attr_allow_rules("// #[allow(dead_code)]").is_empty());
        assert!(attr_allow_rules("// plain comment").is_empty());
    }
}
