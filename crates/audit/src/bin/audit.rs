//! The workspace audit driver.
//!
//! Default mode (no arguments) performs the full audit and exits nonzero on
//! any finding:
//!
//! 1. lints every library source file in `crates/*/src` and `src/` with the
//!    `no-panic`, `no-lossy-cast`, and `doc-pub-fn` rules plus the
//!    determinism/concurrency pass (`no-unordered-iter`, `no-entropy`,
//!    `no-raw-spawn`, `no-float-accum-order`, `lock-order`), gating the
//!    findings through the `audit_baseline.toml` suppression baseline;
//! 2. runs the deep runtime invariant validators (`Csr::validate`,
//!    `LayeredGraph::validate`, `Tape::check_graph`, PPR score checks)
//!    against tiny seeded datasets — unconditionally, so structural bugs
//!    surface even in builds where the `debug_assert!` hooks are gone.
//!
//! Flags:
//!
//! - `--json` — lint-only workspace gate: one JSON array of findings on
//!   stdout (`file`, `line`, `rule`, `fingerprint`, `suppressed`,
//!   `message`), per-rule counts on stderr. Scripts parse this.
//! - `--lint-dir <path> [--json]` — lint one directory with every rule
//!   enabled and no baseline (used against the committed fixture trees to
//!   prove each rule fires).
//!
//! Exit code contract (pinned by `tests/cli_contract.rs`): **0** clean,
//! **1** findings, **2** usage/config/IO error (unreadable tree, malformed
//! baseline).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use kucnet::{KucNet, KucNetConfig, SelectorKind};
use kucnet_audit::{baseline, lint_dir, workspace_report, Diagnostic, GatedReport, LintOptions};
use kucnet_datasets::{traditional_split, DatasetProfile, GeneratedDataset};
use kucnet_eval::Recommender;
use kucnet_graph::{
    build_layered_graph, build_pair_computation_graph, KeepAll, LayeringOptions, NodeId,
};
use kucnet_ppr::{ppr_scores, validate_scores, PprCache, PprConfig};
use kucnet_tensor::{Matrix, Tape};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.as_slice() {
        [] => full_audit(),
        ["--json"] => json_gate(),
        ["--lint-dir", dir] => lint_one_dir(Path::new(dir), false),
        ["--lint-dir", dir, "--json"] | ["--json", "--lint-dir", dir] => {
            lint_one_dir(Path::new(dir), true)
        }
        _ => {
            eprintln!("usage: audit [--json] [--lint-dir <path>]");
            ExitCode::from(2)
        }
    }
}

/// Lints a single directory with all rules on and no baseline; exits 1 on
/// any finding.
fn lint_one_dir(dir: &Path, json: bool) -> ExitCode {
    match lint_dir(dir, &LintOptions::default()) {
        Ok(diags) => {
            if json {
                let report = GatedReport { new: diags, ..GatedReport::default() };
                print_json(&report);
                print_rule_counts(&report);
                if report.new.is_empty() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            } else {
                report_lint(&diags, &format!("{}", dir.display()))
            }
        }
        Err(e) => {
            eprintln!("audit: cannot lint {}: {e}", dir.display());
            ExitCode::from(2)
        }
    }
}

/// `--json`: the lint-only workspace gate with baseline suppression.
fn json_gate() -> ExitCode {
    let report = match workspace_report(&repo_root()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("audit: workspace gate failed: {e}");
            return ExitCode::from(2);
        }
    };
    print_json(&report);
    print_rule_counts(&report);
    for e in &report.stale {
        eprintln!("audit: stale baseline entry {} [{}] {}", e.file, e.rule, e.fingerprint);
    }
    if report.new.is_empty() && report.stale.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Emits one JSON array of findings (new then suppressed) on stdout.
fn print_json(report: &GatedReport) {
    let mut items = Vec::new();
    for (diags, suppressed) in [(&report.new, false), (&report.suppressed, true)] {
        for d in diags.iter() {
            items.push(format!(
                "{{\"file\":{},\"line\":{},\"rule\":{},\"fingerprint\":{},\"suppressed\":{},\"message\":{}}}",
                json_str(&baseline::path_key(&d.file)),
                d.line,
                json_str(d.rule),
                json_str(&d.fingerprint),
                suppressed,
                json_str(&d.message),
            ));
        }
    }
    println!("[{}]", items.join(","));
}

/// Per-rule `new/suppressed` counts on stderr (human + script progress).
fn print_rule_counts(report: &GatedReport) {
    let mut counts: std::collections::BTreeMap<&str, (usize, usize)> =
        std::collections::BTreeMap::new();
    for d in &report.new {
        counts.entry(d.rule).or_default().0 += 1;
    }
    for d in &report.suppressed {
        counts.entry(d.rule).or_default().1 += 1;
    }
    for (rule, (new, sup)) in &counts {
        eprintln!("audit: rule {rule}: {new} new, {sup} baselined");
    }
    eprintln!(
        "audit: total {} new, {} baselined, {} stale baseline entr(ies)",
        report.new.len(),
        report.suppressed.len(),
        report.stale.len()
    );
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn full_audit() -> ExitCode {
    let root = repo_root();
    println!("== kucnet-audit: static lint pass ({}) ==", root.display());
    let lint_status = match workspace_report(&root) {
        Ok(report) => {
            for d in &report.new {
                println!("{d}");
            }
            for e in &report.stale {
                println!("stale baseline entry: {} [{}] {}", e.file, e.rule, e.fingerprint);
            }
            if report.new.is_empty() && report.stale.is_empty() {
                println!(
                    "lint: workspace clean ({} baselined finding(s) suppressed)",
                    report.suppressed.len()
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "lint: {} new issue(s), {} stale baseline entr(ies)",
                    report.new.len(),
                    report.stale.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("audit: cannot walk workspace: {e}");
            ExitCode::from(2)
        }
    };

    println!("\n== kucnet-audit: runtime invariant validators ==");
    let mut failures = 0usize;
    for (name, result) in runtime_checks() {
        match result {
            Ok(()) => println!("ok   {name}"),
            Err(msg) => {
                failures += 1;
                println!("FAIL {name}: {msg}");
            }
        }
    }

    if failures > 0 {
        eprintln!("\naudit: {failures} runtime invariant check(s) failed");
        return ExitCode::FAILURE;
    }
    println!("\nruntime invariants: all checks passed");
    lint_status
}

fn report_lint(diags: &[Diagnostic], what: &str) -> ExitCode {
    if diags.is_empty() {
        println!("lint: {what} clean");
        ExitCode::SUCCESS
    } else {
        for d in diags {
            println!("{d}");
        }
        eprintln!("lint: {} issue(s) in {what}", diags.len());
        ExitCode::FAILURE
    }
}

/// The audit binary lives at `crates/audit`; the workspace root is two up.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/audit has a workspace root two levels up")
        .to_path_buf()
}

/// Every runtime validator run against tiny seeded data, by name.
fn runtime_checks() -> Vec<(&'static str, Result<(), String>)> {
    let data = GeneratedDataset::generate(&DatasetProfile::tiny(), 7);
    let split = traditional_split(&data, 0.2, 11);
    let ckg = data.build_ckg(&split.train);
    let csr = ckg.csr();

    let mut checks: Vec<(&'static str, Result<(), String>)> = Vec::new();

    checks.push(("Csr::validate on generated CKG", csr.validate()));

    // PPR: per-user power iteration scores must be a finite sub-stochastic
    // nonnegative vector; the pruning cache must preserve that per entry.
    let cfg = PprConfig::default();
    let mut ppr_result = Ok(());
    for u in 0..ckg.n_users().min(8) {
        let scores = ppr_scores(csr, NodeId(u as u32), &cfg);
        if let Err(e) = validate_scores(&scores, csr.n_nodes()) {
            ppr_result = Err(format!("user {u}: {e}"));
            break;
        }
    }
    checks.push(("PPR score invariants (first 8 users)", ppr_result));

    let cache = PprCache::compute(csr, ckg.n_users(), &cfg, 32, 2);
    let mut cache_result = Ok(());
    'users: for u in 0..cache.n_users() {
        for &(node, s) in cache.entries(kucnet_graph::UserId(u as u32)) {
            if (node as usize) >= csr.n_nodes() || !s.is_finite() || s < 0.0 {
                cache_result = Err(format!("user {u}: bad cache entry ({node}, {s})"));
                break 'users;
            }
        }
    }
    checks.push(("PprCache entry invariants", cache_result));

    // Layered graphs: the unpruned, PPR-pruned, and pair-wise constructions
    // must all produce edges that exist in the CSR with consistent positions.
    let mut layered_result = Ok(());
    for u in 0..ckg.n_users().min(4) {
        let root = ckg.user_node(kucnet_graph::UserId(u as u32));
        let g = build_layered_graph(csr, root, &LayeringOptions::new(3), &mut KeepAll);
        if let Err(e) = g.validate(csr) {
            layered_result = Err(format!("KeepAll user {u}: {e}"));
            break;
        }
        let mut sel = cache.selector(kucnet_graph::UserId(u as u32), 64);
        let gp = build_layered_graph(csr, root, &LayeringOptions::new(3), &mut sel);
        if let Err(e) = gp.validate(csr) {
            layered_result = Err(format!("PprTopK user {u}: {e}"));
            break;
        }
    }
    checks.push(("LayeredGraph::validate (KeepAll + PprTopK)", layered_result));

    let user0 = ckg.user_node(kucnet_graph::UserId(0));
    let item0 = ckg.item_node(kucnet_graph::ItemId(0));
    let pair = build_pair_computation_graph(csr, user0, item0, 3);
    checks.push(("LayeredGraph::validate (pair computation graph)", pair.validate(csr)));

    // Tape: build a small but representative DAG (matmul, gather, scatter,
    // broadcast, nonlinearity, reduction), run backward, and check the full
    // graph — shapes, topology, finiteness of values and gradients.
    let tape = Tape::new();
    let x = tape.leaf(Matrix::from_fn(6, 4, |r, c| 0.1 * (r as f32) - 0.05 * (c as f32)));
    let w = tape.leaf(Matrix::from_fn(4, 3, |r, c| 0.02 * ((r + c) as f32) - 0.03));
    let b = tape.leaf(Matrix::from_fn(1, 3, |_, c| 0.01 * (c as f32)));
    let h = tape.add_row_broadcast(tape.matmul(x, w), b);
    let g = tape.gather_rows(h, &[0, 2, 2, 5]);
    let s = tape.scatter_add_rows(g, &[1, 0, 3, 1], 4);
    let out = tape.mean_all(tape.sigmoid(s));
    checks.push(("Tape::check_graph before backward", tape.check_graph()));
    tape.backward(out);
    checks.push(("Tape::check_graph after backward", tape.check_graph()));

    // Pooled tape + fused kernels: run the same graph shape twice through
    // one resettable tape so the second pass is served entirely from
    // recycled buffers, then check the graph after each backward.
    // `check_graph`'s aliasing invariant proves no two live nodes were
    // handed overlapping pooled storage — the failure mode pooling risks.
    let pooled = Tape::new();
    let mut pooled_result = Ok(());
    for round in 0..2 {
        pooled.reset();
        let hs = pooled.leaf(Matrix::from_fn(5, 4, |r, c| 0.2 * (r as f32) - 0.1 * (c as f32)));
        let rel = pooled.leaf(Matrix::from_fn(3, 4, |r, c| 0.05 * ((r * c) as f32) - 0.04));
        let bias = pooled.leaf(Matrix::from_fn(1, 2, |_, c| 0.03 * (c as f32)));
        let w_a = pooled.leaf(Matrix::from_fn(2, 1, |r, _| 0.4 - 0.3 * (r as f32)));
        let w_att = pooled.leaf(Matrix::from_fn(4, 2, |r, c| 0.06 * ((r + c) as f32) - 0.1));
        let msg = pooled.gather_pair_add(hs, &[0, 4, 4, 2], rel, &[1, 0, 2, 1]);
        let att = pooled.matmul(msg, w_att);
        let alpha = pooled.attn_edge_score(att, att, bias, w_a);
        let agg = pooled.scale_mask_scatter_add(msg, Some(alpha), None, &[1, 0, 1, 2], 3);
        let loss = pooled.mean_all(pooled.square(agg));
        pooled.backward(loss);
        if let Err(e) = pooled.check_graph() {
            pooled_result = Err(format!("round {round}: {e}"));
            break;
        }
    }
    checks.push(("Tape::check_graph on pooled + fused graph (2 rounds)", pooled_result));

    // End to end: one real training epoch must leave the model's tape-built
    // graphs and parameters finite (KucNet::train_epoch re-checks its own
    // tape under debug assertions; here we verify training completes and the
    // resulting scores are finite).
    let mut model = KucNet::new(
        KucNetConfig::default().with_epochs(1).with_selector(SelectorKind::KeepAll),
        data.build_ckg(&split.train),
    );
    model.fit();
    let mut train_result = Ok(());
    let scores = model.score_items(kucnet_graph::UserId(0));
    if !scores.iter().all(|s| s.is_finite()) {
        train_result = Err("non-finite item score after one training epoch".to_string());
    }
    checks.push(("KucNet one-epoch training sanity", train_result));

    checks
}
