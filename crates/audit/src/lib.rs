//! # kucnet-audit
//!
//! Self-hosted static analysis plus deep runtime invariant checks for the
//! KUCNet workspace. Three halves:
//!
//! 1. **Linter** ([`lint_workspace`] / [`lint_dir`]): a pure-std Rust
//!    tokenizer and eight rules over every library source file in
//!    `crates/*/src` and `src/`: the original `no-panic`, `no-lossy-cast`,
//!    and `doc-pub-fn` ([`rules`]) plus the determinism/concurrency pass
//!    `no-unordered-iter`, `no-entropy`, `no-raw-spawn`,
//!    `no-float-accum-order`, and `lock-order` ([`rules_concurrency`]).
//!    Suppression is in-line (`// audit: allow(<rule>) — <reason>` or
//!    `// #[allow(kucnet::<rule>)] — <reason>`).
//! 2. **Suppression baseline** ([`baseline`], [`workspace_report`]):
//!    justified legacy findings live in `audit_baseline.toml` keyed by
//!    stable fingerprints; the gate fails on any finding *not* in the
//!    baseline, and `scripts/audit_ratchet.sh` fails if the baseline grows.
//! 3. **Runtime validators** (exercised by the `audit` binary): the
//!    `Csr::validate`, `LayeredGraph::validate`, `Tape::check_graph`, and
//!    `validate_scores` invariant checkers run unconditionally against tiny
//!    seeded datasets, so a broken structural invariant fails the audit even
//!    in release builds where the `debug_assert!` hooks are compiled out.
//!
//! `cargo run -p kucnet-audit --bin audit` exits 0 when clean, 1 on
//! findings, 2 on config/IO errors; `--json` emits machine-readable
//! diagnostics (see `src/bin/audit.rs`).

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod rules_concurrency;

use std::io;
use std::path::{Path, PathBuf};

pub use baseline::{BaselineEntry, GatedReport};
pub use rules::{
    lint_source, Diagnostic, LintOptions, RULE_DOC_PUB_FN, RULE_NO_LOSSY_CAST, RULE_NO_PANIC,
};
pub use rules_concurrency::{
    ConcurrencyConfig, RULE_LOCK_ORDER, RULE_NO_ENTROPY, RULE_NO_FLOAT_ACCUM, RULE_NO_RAW_SPAWN,
    RULE_NO_UNORDERED_ITER,
};

/// Crates whose ids flow through `u32` spaces; only these get the
/// `no-lossy-cast` rule (elsewhere, `as` casts of float statistics are
/// routine and harmless). `serve` is included because its request ids,
/// counters, and histogram math must stay exact for arbitrary client input;
/// `par` because its work-item indices feed every other crate's id spaces;
/// `tensor` because the pooled-tape and fused edge-message kernels route
/// `u32` row indices through every gather/scatter hot path, where a silent
/// truncation would read or write the wrong row — its i8 quantization
/// kernels (`quant.rs`) stay under the rule too: the one deliberate
/// narrowing (`f32 → i8` in `quantize_row_into`, where the rounded+clamped
/// cast *is* the quantization) carries an annotated
/// `audit: allow(no-lossy-cast)` site, and every widening on the dequantize
/// side uses lossless `from` conversions; `dynamic` because its write path
/// funnels raw client-supplied ids into the graph's `u32` node and relation
/// spaces.
const LOSSY_CAST_CRATES: [&str; 6] = ["graph", "ppr", "serve", "par", "tensor", "dynamic"];

/// Crates under the bitwise-reproducibility contract (DESIGN.md §10): every
/// value they compute must be a pure function of config + seed, so hash
/// iteration order, entropy sources, and unordered float reductions are
/// hazards. `serve` and `bench` are exempt from those three rules — they
/// time things and shuffle client load on purpose — but still get
/// `no-raw-spawn` (serve's long-lived service threads are baselined) and
/// `lock-order`. `dynamic` is in: its refresh ticks must replay to
/// byte-identical epochs, so wall clocks and unordered iteration are bugs
/// there, not conveniences.
const DETERMINISTIC_CRATES: [&str; 7] =
    ["core", "datasets", "eval", "graph", "par", "ppr", "dynamic"];

/// The default baseline location relative to the repo root.
pub const BASELINE_FILE: &str = "audit_baseline.toml";

/// Per-module upgrades layered on top of the owning crate's rule config.
/// The sharded serving path (DESIGN.md §17) spans three crates whose new
/// modules carry stricter contracts than their crates' defaults: `core` and
/// `datasets` are not lossy-cast crates, but these two modules funnel u64
/// segment addresses and on-disk island records into `u32` id spaces, so a
/// bare narrowing there is a real corruption hazard.
const MODULE_LOSSY_CAST: [&str; 2] = ["crates/core/src/sharded.rs", "crates/datasets/src/scale.rs"];

/// Modules held to the full determinism contract even though their crate is
/// exempt: `serve` may time and shuffle, but shard routing must stay a pure
/// function of the user id (the differential suite depends on it), so hash
/// iteration, entropy, and unordered float reductions are bugs here.
const MODULE_DETERMINISTIC: [&str; 1] = ["crates/serve/src/shard.rs"];

/// Applies the per-module upgrade lists to one repo-relative file path.
/// Only ever *tightens* the crate config, so a module list entry can never
/// silently exempt a file from its crate's rules.
fn options_for_module(shown: &Path, crate_opts: LintOptions) -> LintOptions {
    let key: String = shown.iter().map(|c| c.to_string_lossy()).collect::<Vec<_>>().join("/");
    let mut opts = crate_opts;
    if MODULE_LOSSY_CAST.contains(&key.as_str()) {
        opts.lossy_casts = true;
    }
    if MODULE_DETERMINISTIC.contains(&key.as_str()) {
        opts.concurrency.unordered_iter = true;
        opts.concurrency.entropy = true;
        opts.concurrency.float_accum = true;
    }
    opts
}

/// Rule toggles for one crate, by directory name.
fn options_for_crate(name: &str) -> LintOptions {
    let deterministic = DETERMINISTIC_CRATES.contains(&name);
    LintOptions {
        lossy_casts: LOSSY_CAST_CRATES.contains(&name),
        concurrency: ConcurrencyConfig {
            unordered_iter: deterministic,
            entropy: deterministic,
            // All parallelism funnels through kucnet-par, which is the one
            // crate allowed to touch std::thread directly.
            raw_spawn: name != "par",
            float_accum: deterministic,
            lock_order: true,
        },
    }
}

/// Lints every `.rs` file under `dir` (recursively), sorted by path for
/// deterministic output. Files under a `bin/` directory are skipped: the
/// rules target library code, and CLI binaries legitimately exit via panics
/// and print paths. Diagnostics carry baseline fingerprints; paths are
/// reported relative to `display_root` when given (the workspace gate uses
/// the repo root so fingerprints are machine-independent).
pub fn lint_dir_rel(
    dir: &Path,
    display_root: Option<&Path>,
    opts: &LintOptions,
) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rs_files(dir, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    let mut sources: Vec<(PathBuf, String)> = Vec::new();
    for file in files {
        let source = std::fs::read_to_string(&file)?;
        let shown = match display_root {
            Some(root) => file.strip_prefix(root).unwrap_or(&file).to_path_buf(),
            None => file.clone(),
        };
        let mut diags = lint_source(&shown, &source, &options_for_module(&shown, *opts));
        baseline::stamp_fingerprints(&mut diags, &baseline::path_key(&shown), &source);
        out.extend(diags);
        sources.push((shown, source));
    }
    if opts.concurrency.lock_order {
        let mut diags = rules_concurrency::lock_order_rules(&sources);
        diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        let mut i = 0;
        while i < diags.len() {
            let mut j = i + 1;
            while j < diags.len() && diags[j].file == diags[i].file {
                j += 1;
            }
            if let Some((file, src)) = sources.iter().find(|(f, _)| *f == diags[i].file) {
                baseline::stamp_fingerprints(&mut diags[i..j], &baseline::path_key(file), src);
            }
            i = j;
        }
        out.extend(diags);
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(out)
}

/// [`lint_dir_rel`] with absolute display paths (fixture and one-off runs).
pub fn lint_dir(dir: &Path, opts: &LintOptions) -> io::Result<Vec<Diagnostic>> {
    lint_dir_rel(dir, None, opts)
}

/// Lints the whole workspace rooted at `repo_root`: each `crates/<name>/src`
/// tree plus the root `src/`, with per-crate rule configs
/// ([`options_for_crate`]). Fixture trees (anything not directly under a
/// crate's own `src`) are naturally excluded. Paths in the returned
/// diagnostics are repo-relative.
pub fn lint_workspace(repo_root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut targets: Vec<(PathBuf, LintOptions)> = Vec::new();
    let crates_dir = repo_root.join("crates");
    let mut names: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    names.sort();
    for name in names {
        let src = crates_dir.join(&name).join("src");
        if src.is_dir() {
            targets.push((src, options_for_crate(&name)));
        }
    }
    // The root crate is re-export glue: deterministic-crate rules apply.
    targets.push((repo_root.join("src"), options_for_crate("root")));

    let mut out = Vec::new();
    for (dir, opts) in targets {
        out.extend(lint_dir_rel(&dir, Some(repo_root), &opts)?);
    }
    Ok(out)
}

/// Reads the baseline file (missing file = empty baseline) and returns it
/// alongside any parse failure mapped to `io::ErrorKind::InvalidData` —
/// the binary turns that into exit code 2.
pub fn load_baseline(repo_root: &Path) -> io::Result<Vec<BaselineEntry>> {
    let path = repo_root.join(BASELINE_FILE);
    if !path.exists() {
        return Ok(Vec::new());
    }
    let text = std::fs::read_to_string(&path)?;
    baseline::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// The full workspace gate: lint, then split findings through the
/// suppression baseline. The audit passes iff `report.new` is empty.
pub fn workspace_report(repo_root: &Path) -> io::Result<GatedReport> {
    let diags = lint_workspace(repo_root)?;
    let entries = load_baseline(repo_root)?;
    Ok(baseline::apply(diags, &entries))
}

/// Recursively gathers `.rs` files, skipping `bin/` directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            if entry.file_name() == "bin" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn repo_root() -> PathBuf {
        // crates/audit -> crates -> repo root
        Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).expect("repo root").to_path_buf()
    }

    fn fixture(rel: &str) -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(rel)
    }

    #[test]
    fn workspace_gate_is_clean() {
        let report = workspace_report(&repo_root()).expect("workspace readable");
        assert!(
            report.new.is_empty(),
            "workspace lint found {} unbaselined issue(s):\n{}",
            report.new.len(),
            report.new.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
        );
        assert!(
            report.stale.is_empty(),
            "audit_baseline.toml holds {} stale entr(ies) — delete them:\n{}",
            report.stale.len(),
            report
                .stale
                .iter()
                .map(|e| format!("{} [{}] {}", e.file, e.rule, e.fingerprint))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn baseline_only_holds_serve_service_threads() {
        // The baseline is a debt ledger, not a dumping ground: today it may
        // only contain the serve crate's justified long-lived raw spawns.
        let entries = load_baseline(&repo_root()).expect("baseline readable");
        for e in &entries {
            assert_eq!(e.rule, RULE_NO_RAW_SPAWN, "unexpected baselined rule: {e:?}");
            assert!(e.file.starts_with("crates/serve/src/"), "unexpected baselined file: {e:?}");
            assert!(!e.note.is_empty(), "baseline entries need a justification note: {e:?}");
        }
    }

    #[test]
    fn module_upgrade_lists_only_tighten() {
        let core = options_for_crate("core");
        assert!(!core.lossy_casts, "core gaining crate-wide lossy-cast? update this test");
        let sharded = options_for_module(Path::new("crates/core/src/sharded.rs"), core);
        assert!(sharded.lossy_casts, "sharded.rs must get no-lossy-cast");

        let datasets = options_for_crate("datasets");
        let scale = options_for_module(Path::new("crates/datasets/src/scale.rs"), datasets);
        assert!(scale.lossy_casts, "scale.rs must get no-lossy-cast");

        let serve = options_for_crate("serve");
        assert!(!serve.concurrency.entropy, "serve-wide determinism? update this test");
        let shard = options_for_module(Path::new("crates/serve/src/shard.rs"), serve);
        assert!(
            shard.concurrency.unordered_iter
                && shard.concurrency.entropy
                && shard.concurrency.float_accum,
            "shard.rs must get the determinism rules"
        );
        // The upgrade only tightens: crate-level toggles stay on, and files
        // not on a list keep their crate's config untouched.
        assert!(shard.lossy_casts && shard.concurrency.raw_spawn);
        let other = options_for_module(Path::new("crates/serve/src/http.rs"), serve);
        assert!(!other.concurrency.entropy);
    }

    #[test]
    fn fixtures_trip_every_rule() {
        let diags = lint_dir(&fixture("bad/src"), &LintOptions::default()).expect("readable");
        let fired: BTreeSet<&str> = diags.iter().map(|d| d.rule).collect();
        for rule in [RULE_NO_PANIC, RULE_NO_LOSSY_CAST, RULE_DOC_PUB_FN] {
            assert!(fired.contains(rule), "fixture did not trip {rule}: {diags:?}");
        }
    }

    #[test]
    fn concurrency_fixtures_trip_each_rule_exactly_once() {
        let cases = [
            ("bad_concurrency/unordered_iter/src", RULE_NO_UNORDERED_ITER),
            ("bad_concurrency/entropy/src", RULE_NO_ENTROPY),
            ("bad_concurrency/raw_spawn/src", RULE_NO_RAW_SPAWN),
            ("bad_concurrency/float_accum/src", RULE_NO_FLOAT_ACCUM),
            ("bad_concurrency/lock_order/src", RULE_LOCK_ORDER),
        ];
        for (dir, rule) in cases {
            let diags = lint_dir(&fixture(dir), &LintOptions::default()).expect("readable");
            assert_eq!(diags.len(), 1, "{dir} must trip exactly one finding, got: {diags:?}");
            assert_eq!(diags[0].rule, rule, "{dir} tripped the wrong rule: {diags:?}");
            assert_eq!(diags[0].fingerprint.len(), 16, "fingerprint stamped: {diags:?}");
        }
    }

    #[test]
    fn good_concurrency_fixture_is_clean() {
        let diags =
            lint_dir(&fixture("good_concurrency/src"), &LintOptions::default()).expect("readable");
        assert!(diags.is_empty(), "clean fixture tripped: {diags:?}");
    }

    #[test]
    fn fixtures_are_not_reached_by_workspace_walk() {
        let diags = lint_workspace(&repo_root()).expect("workspace readable");
        assert!(
            diags.iter().all(|d| !d.file.components().any(|c| c.as_os_str() == "fixtures")),
            "workspace walk leaked into fixtures"
        );
    }

    #[test]
    fn bin_directories_are_exempt() {
        // The repo root src/bin holds CLI entry points; the walker must not
        // visit them (they print paths and exit — not library code).
        let root = repo_root();
        let diags = lint_workspace(&root).expect("workspace readable");
        assert!(
            diags.iter().all(|d| !d.file.components().any(|c| c.as_os_str() == "bin")),
            "lint walked into a bin/ directory"
        );
    }

    #[test]
    fn workspace_paths_are_repo_relative() {
        // Fingerprints embed the path; it must not depend on where the repo
        // is checked out.
        let diags = lint_workspace(&repo_root()).expect("workspace readable");
        assert!(diags.iter().all(|d| d.file.is_relative()), "absolute path leaked into gate");
    }
}
