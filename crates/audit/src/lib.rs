//! # kucnet-audit
//!
//! Self-hosted static analysis plus deep runtime invariant checks for the
//! KUCNet workspace. Two halves:
//!
//! 1. **Linter** ([`lint_workspace`] / [`lint_dir`]): a pure-std Rust
//!    tokenizer and three rules (`no-panic`, `no-lossy-cast`, `doc-pub-fn`)
//!    over every library source file in `crates/*/src` and `src/`. See
//!    [`rules`] for rule semantics and the
//!    `// audit: allow(<rule>) — <reason>` escape hatch.
//! 2. **Runtime validators** (exercised by the `audit` binary): the
//!    `Csr::validate`, `LayeredGraph::validate`, `Tape::check_graph`, and
//!    `validate_scores` invariant checkers run unconditionally against tiny
//!    seeded datasets, so a broken structural invariant fails the audit even
//!    in release builds where the `debug_assert!` hooks are compiled out.
//!
//! `cargo run -p kucnet-audit --bin audit` exits nonzero on any finding.

pub mod lexer;
pub mod rules;

use std::io;
use std::path::{Path, PathBuf};

pub use rules::{
    lint_source, Diagnostic, LintOptions, RULE_DOC_PUB_FN, RULE_NO_LOSSY_CAST, RULE_NO_PANIC,
};

/// Crates whose ids flow through `u32` spaces; only these get the
/// `no-lossy-cast` rule (elsewhere, `as` casts of float statistics are
/// routine and harmless). `serve` is included because its request ids,
/// counters, and histogram math must stay exact for arbitrary client input;
/// `par` because its work-item indices feed every other crate's id spaces;
/// `tensor` because the pooled-tape and fused edge-message kernels route
/// `u32` row indices through every gather/scatter hot path, where a silent
/// truncation would read or write the wrong row.
const LOSSY_CAST_CRATES: [&str; 5] = ["graph", "ppr", "serve", "par", "tensor"];

/// Lints every `.rs` file under `dir` (recursively), sorted by path for
/// deterministic output. Files under a `bin/` directory are skipped: the
/// rules target library code, and CLI binaries legitimately exit via panics
/// and print paths.
pub fn lint_dir(dir: &Path, opts: &LintOptions) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rs_files(dir, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for file in files {
        let source = std::fs::read_to_string(&file)?;
        out.extend(lint_source(&file, &source, opts));
    }
    Ok(out)
}

/// Lints the whole workspace rooted at `repo_root`: each `crates/<name>/src`
/// tree plus the root `src/`, with `no-lossy-cast` enabled only for the
/// id-carrying crates. Fixture trees (anything not directly under a crate's
/// own `src`) are naturally excluded.
pub fn lint_workspace(repo_root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut targets: Vec<(PathBuf, LintOptions)> = Vec::new();
    let crates_dir = repo_root.join("crates");
    let mut names: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    names.sort();
    for name in names {
        let src = crates_dir.join(&name).join("src");
        if src.is_dir() {
            let lossy_casts = LOSSY_CAST_CRATES.contains(&name.as_str());
            targets.push((src, LintOptions { lossy_casts }));
        }
    }
    targets.push((repo_root.join("src"), LintOptions { lossy_casts: false }));

    let mut out = Vec::new();
    for (dir, opts) in targets {
        out.extend(lint_dir(&dir, &opts)?);
    }
    Ok(out)
}

/// Recursively gathers `.rs` files, skipping `bin/` directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            if entry.file_name() == "bin" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn repo_root() -> PathBuf {
        // crates/audit -> crates -> repo root
        Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).expect("repo root").to_path_buf()
    }

    #[test]
    fn workspace_tree_is_clean() {
        let diags = lint_workspace(&repo_root()).expect("workspace readable");
        assert!(
            diags.is_empty(),
            "workspace lint found {} issue(s):\n{}",
            diags.len(),
            diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
        );
    }

    #[test]
    fn fixtures_trip_every_rule() {
        let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/bad/src");
        let diags =
            lint_dir(&fixtures, &LintOptions { lossy_casts: true }).expect("fixtures readable");
        let fired: BTreeSet<&str> = diags.iter().map(|d| d.rule).collect();
        for rule in [RULE_NO_PANIC, RULE_NO_LOSSY_CAST, RULE_DOC_PUB_FN] {
            assert!(fired.contains(rule), "fixture did not trip {rule}: {diags:?}");
        }
    }

    #[test]
    fn fixtures_are_not_reached_by_workspace_walk() {
        let diags = lint_workspace(&repo_root()).expect("workspace readable");
        assert!(
            diags.iter().all(|d| !d.file.components().any(|c| c.as_os_str() == "fixtures")),
            "workspace walk leaked into fixtures"
        );
    }

    #[test]
    fn bin_directories_are_exempt() {
        // The repo root src/bin holds CLI entry points; the walker must not
        // visit them (they print paths and exit — not library code).
        let root = repo_root();
        let diags = lint_workspace(&root).expect("workspace readable");
        assert!(
            diags.iter().all(|d| !d.file.components().any(|c| c.as_os_str() == "bin")),
            "lint walked into a bin/ directory"
        );
    }
}
