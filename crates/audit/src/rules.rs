//! The lint rules and the allow-comment escape hatch.
//!
//! Three rules, all operating on the token stream from [`crate::lexer`]:
//!
//! - **`no-panic`** — `.unwrap()`, `.expect(...)` and `panic!` are forbidden
//!   in non-test library code. Recoverable failures must use `Result`;
//!   genuinely impossible cases carry an audit allow comment saying why.
//! - **`no-lossy-cast`** — in the graph/PPR crates, `as` casts into narrow
//!   integer types (`u8`/`u16`/`u32`/`i8`/`i16`/`i32`) silently truncate
//!   node/relation/index ids; `try_into` or `kucnet_graph::index_u32` must be
//!   used instead. The same rule flags the saturating-fallback idiom
//!   `T::try_from(x).unwrap_or(T::MAX)`: it hides overflow as a huge
//!   in-band value. A checked conversion that propagates the failure (or an
//!   allow comment arguing saturation is genuinely unreachable) is
//!   required.
//! - **`doc-pub-fn`** — every `pub fn` needs a doc comment.
//!
//! A diagnostic on line `N` is suppressed by a comment directly above it (a
//! contiguous comment block ending on line `N - 1`) of the form
//! `// audit: allow(<rule>) — <reason>`, or the attribute-style spelling
//! `// #[allow(kucnet::<rule>)] — <reason>` (parsed by
//! [`crate::lexer::attr_allow_rules`]; `<rule>` drops the `no-` prefix and
//! uses underscores, e.g. `kucnet::unordered_iter`); the reason is mandatory
//! either way.
//!
//! The determinism/concurrency rules (`no-unordered-iter`, `no-entropy`,
//! `no-raw-spawn`, `no-float-accum-order`, `lock-order`) live in
//! [`crate::rules_concurrency`] and run from the same [`lint_source`] entry
//! point, gated per crate by [`ConcurrencyConfig`].

use std::path::{Path, PathBuf};

use crate::lexer::{attr_allow_rules, tokenize, Tok, TokKind};
use crate::rules_concurrency::{self, ConcurrencyConfig};

/// Rule name: forbid `.unwrap()` / `.expect(...)` / `panic!` in library code.
pub const RULE_NO_PANIC: &str = "no-panic";
/// Rule name: forbid lossy `as` casts to narrow integer types.
pub const RULE_NO_LOSSY_CAST: &str = "no-lossy-cast";
/// Rule name: require doc comments on every `pub fn`.
pub const RULE_DOC_PUB_FN: &str = "doc-pub-fn";

/// Integer types an `as` cast may silently truncate ids into.
const NARROW_INT_TYPES: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// One lint finding, addressable as `file:line`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Which rule fired (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Stable fingerprint (file + rule + normalized line text + occurrence
    /// index, FNV-1a hashed) used to match findings against the suppression
    /// baseline independent of line-number drift. Empty until stamped by
    /// [`crate::baseline::stamp_fingerprints`].
    pub fingerprint: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.rule, self.message)
    }
}

/// Per-file rule toggles.
#[derive(Clone, Copy, Debug)]
pub struct LintOptions {
    /// Enables `no-lossy-cast` (on for the graph/PPR crates, where bare
    /// narrowing would corrupt ids; off elsewhere, where `as` casts of float
    /// statistics are routine).
    pub lossy_casts: bool,
    /// Per-crate toggles for the determinism/concurrency rules
    /// (see [`crate::rules_concurrency`]).
    pub concurrency: ConcurrencyConfig,
}

impl Default for LintOptions {
    fn default() -> Self {
        Self { lossy_casts: true, concurrency: ConcurrencyConfig::default() }
    }
}

/// Lints one file's source text. `file` is used only for diagnostics.
pub fn lint_source(file: &Path, source: &str, opts: &LintOptions) -> Vec<Diagnostic> {
    let toks = tokenize(source);
    let skipped = test_code_mask(&toks);
    let mut out = Vec::new();
    let mut flag = |line: u32, rule: &'static str, message: String| {
        if !allowed(source, line, rule) {
            out.push(Diagnostic {
                file: file.to_path_buf(),
                line,
                rule,
                message,
                fingerprint: String::new(),
            });
        }
    };

    for (i, t) in toks.iter().enumerate() {
        if skipped[i] || t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect" => {
                let after_dot =
                    prev_code(&toks, i).is_some_and(|p| toks[p].kind == TokKind::Punct('.'));
                let called =
                    next_code(&toks, i).is_some_and(|n| toks[n].kind == TokKind::Punct('('));
                if after_dot && called {
                    flag(
                        t.line,
                        RULE_NO_PANIC,
                        format!(
                            ".{}() in library code: return a Result or justify \
                             with `// audit: allow({RULE_NO_PANIC}) — <reason>`",
                            t.text
                        ),
                    );
                }
            }
            "panic" => {
                if next_code(&toks, i).is_some_and(|n| toks[n].kind == TokKind::Punct('!')) {
                    flag(
                        t.line,
                        RULE_NO_PANIC,
                        "panic! in library code: return a Result or justify \
                         with an audit allow comment"
                            .to_string(),
                    );
                }
            }
            "unwrap_or" if opts.lossy_casts => {
                let after_dot =
                    prev_code(&toks, i).is_some_and(|p| toks[p].kind == TokKind::Punct('.'));
                let open = next_code(&toks, i).filter(|&n| toks[n].kind == TokKind::Punct('('));
                if after_dot
                    && open.is_some_and(|n| call_args_mention_max(&toks, n))
                    && receiver_is_try_from(&toks, i)
                {
                    flag(
                        t.line,
                        RULE_NO_LOSSY_CAST,
                        "try_from(..).unwrap_or(..MAX) hides overflow as a huge \
                         in-band value; propagate the conversion failure instead"
                            .to_string(),
                    );
                }
            }
            "as" if opts.lossy_casts => {
                if let Some(n) = next_code(&toks, i) {
                    if toks[n].kind == TokKind::Ident
                        && NARROW_INT_TYPES.contains(&toks[n].text.as_str())
                    {
                        flag(
                            t.line,
                            RULE_NO_LOSSY_CAST,
                            format!(
                                "`as {}` can silently truncate; use try_into \
                                 or kucnet_graph::index_u32",
                                toks[n].text
                            ),
                        );
                    }
                }
            }
            "pub" => {
                if let Some((fn_line, name)) = undocumented_pub_fn(&toks, i) {
                    flag(fn_line, RULE_DOC_PUB_FN, format!("pub fn {name} has no doc comment"));
                }
            }
            _ => {}
        }
    }
    out.extend(rules_concurrency::file_rules(file, source, &toks, &skipped, &opts.concurrency));
    out
}

/// True when the call opened by the `(` at `open` mentions a `MAX`
/// associated constant anywhere in its arguments.
fn call_args_mention_max(toks: &[Tok], open: usize) -> bool {
    let mut depth = 0usize;
    for t in toks.iter().skip(open) {
        match &t.kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            TokKind::Ident if t.text == "MAX" => return true,
            _ => {}
        }
    }
    false
}

/// True when the method receiver ending just before the `.` preceding token
/// `i` is itself a `try_from(...)` call.
fn receiver_is_try_from(toks: &[Tok], i: usize) -> bool {
    // Walk: `i` is the `unwrap_or` ident; before it sits `.`, and before
    // that the receiver must end with `try_from ( ... )`.
    let Some(dot) = prev_code(toks, i) else { return false };
    let Some(mut k) = prev_code(toks, dot) else { return false };
    if toks[k].kind != TokKind::Punct(')') {
        return false;
    }
    // Match the `)` back to its `(`.
    let mut depth = 0usize;
    loop {
        match toks[k].kind {
            TokKind::Punct(')') => depth += 1,
            TokKind::Punct('(') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if k == 0 {
            return false;
        }
        k -= 1;
    }
    prev_code(toks, k).is_some_and(|p| toks[p].kind == TokKind::Ident && toks[p].text == "try_from")
}

/// Index of the next non-comment token after `i`.
pub(crate) fn next_code(toks: &[Tok], i: usize) -> Option<usize> {
    toks.iter().enumerate().skip(i + 1).find(|(_, t)| !t.is_comment()).map(|(k, _)| k)
}

/// Index of the previous non-comment token before `i`.
pub(crate) fn prev_code(toks: &[Tok], i: usize) -> Option<usize> {
    toks[..i].iter().enumerate().rev().find(|(_, t)| !t.is_comment()).map(|(k, _)| k)
}

/// Marks every token inside `#[cfg(test)] mod ... { ... }` blocks and
/// `#[test] fn ... { ... }` bodies, which the rules exempt.
pub(crate) fn test_code_mask(toks: &[Tok]) -> Vec<bool> {
    let mut skip = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind != TokKind::Punct('#') {
            i += 1;
            continue;
        }
        let Some((attr_end, is_test_attr)) = parse_attribute(toks, i) else {
            i += 1;
            continue;
        };
        if !is_test_attr {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes between the test attr and the item.
        let mut j = attr_end + 1;
        while j < toks.len() {
            match toks[j].kind {
                TokKind::Punct('#') => match parse_attribute(toks, j) {
                    Some((end, _)) => j = end + 1,
                    None => break,
                },
                _ if toks[j].is_comment() => j += 1,
                _ => break,
            }
        }
        // Find the item's opening brace (end of a mod header or fn
        // signature), then its matching close; everything in between is
        // test code.
        let Some(open) = (j..toks.len()).find(|&k| toks[k].kind == TokKind::Punct('{')) else {
            i = attr_end + 1;
            continue;
        };
        let mut depth = 0usize;
        let mut close = open;
        for k in open..toks.len() {
            match toks[k].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        close = k;
                        break;
                    }
                }
                _ => {}
            }
        }
        for s in skip.iter_mut().take(close + 1).skip(i) {
            *s = true;
        }
        i = close + 1;
    }
    skip
}

/// Parses an attribute starting at the `#` token `i`. Returns the index of
/// the closing `]` and whether the attribute marks test code
/// (`#[test]`, or any `#[cfg(...)]` mentioning `test`).
fn parse_attribute(toks: &[Tok], i: usize) -> Option<(usize, bool)> {
    let open = next_code(toks, i)?;
    if toks[open].kind != TokKind::Punct('[') {
        return None;
    }
    let mut depth = 0usize;
    let mut is_cfg = false;
    let mut mentions_test = false;
    let mut first_ident = true;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match &t.kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    let bare_test = is_cfg && mentions_test;
                    return Some((k, bare_test));
                }
            }
            TokKind::Ident => {
                if first_ident {
                    first_ident = false;
                    if t.text == "test" {
                        // `#[test]` itself.
                        mentions_test = true;
                        is_cfg = true;
                    } else if t.text == "cfg" {
                        is_cfg = true;
                    }
                } else if t.text == "test" {
                    mentions_test = true;
                }
            }
            _ => {}
        }
        let _ = k;
    }
    None
}

/// If the `pub` at token `i` introduces an undocumented `pub fn`, returns the
/// line to flag and the function name.
fn undocumented_pub_fn(toks: &[Tok], i: usize) -> Option<(u32, String)> {
    // Restricted visibility (`pub(crate)`, `pub(super)`) is not public API.
    let mut j = next_code(toks, i)?;
    if toks[j].kind == TokKind::Punct('(') {
        return None;
    }
    // Allow qualifiers between `pub` and `fn`: const/async/unsafe/extern "C".
    loop {
        match &toks[j].kind {
            TokKind::Ident if toks[j].text == "fn" => break,
            TokKind::Ident
                if ["const", "async", "unsafe", "extern"].contains(&toks[j].text.as_str()) =>
            {
                j = next_code(toks, j)?;
            }
            TokKind::Literal => {
                j = next_code(toks, j)?; // the "C" in extern "C"
            }
            _ => return None, // pub struct / pub use / pub mod ...
        }
    }
    let name_idx = next_code(toks, j)?;
    let name = toks[name_idx].text.clone();
    if is_documented(toks, i) {
        return None;
    }
    Some((toks[i].line, name))
}

/// Walks backwards from the `pub` token over attributes; documented means a
/// doc comment (or a `#[doc ...]` attribute) directly precedes the item.
fn is_documented(toks: &[Tok], i: usize) -> bool {
    let mut k = i;
    while k > 0 {
        k -= 1;
        match &toks[k].kind {
            TokKind::DocComment => return true,
            TokKind::LineComment | TokKind::BlockComment => continue,
            TokKind::Punct(']') => {
                // Skip backwards over one attribute, noting `#[doc = ...]`.
                let mut depth = 0usize;
                let mut saw_doc = false;
                loop {
                    match &toks[k].kind {
                        TokKind::Punct(']') => depth += 1,
                        TokKind::Punct('[') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        TokKind::Ident if toks[k].text == "doc" => saw_doc = true,
                        _ => {}
                    }
                    if k == 0 {
                        return false;
                    }
                    k -= 1;
                }
                if saw_doc {
                    return true;
                }
                // Step over the leading `#`.
                if k == 0 || toks[k - 1].kind != TokKind::Punct('#') {
                    return false;
                }
                k -= 1;
            }
            _ => return false,
        }
    }
    false
}

/// True when the contiguous comment block directly above `line` contains
/// `audit: allow(<rule>)` or `#[allow(kucnet::<alias>)]` with a non-empty
/// reason. The attribute alias drops a leading `no-` and swaps `-` for `_`
/// (`no-unordered-iter` ↦ `kucnet::unordered_iter`).
pub(crate) fn allowed(source: &str, line: u32, rule: &str) -> bool {
    let lines: Vec<&str> = source.lines().collect();
    let alias = rule.strip_prefix("no-").unwrap_or(rule).replace('-', "_");
    let mut n = line as usize; // 1-based; lines[n - 1] is the flagged line.
    while n >= 2 {
        n -= 1;
        let text = lines.get(n - 1).map_or("", |l| l.trim());
        if !text.starts_with("//") {
            return false;
        }
        let needle = format!("audit: allow({rule})");
        if let Some(pos) = text.find(&needle) {
            let reason = &text[pos + needle.len()..];
            // A real justification, not just punctuation.
            return reason.chars().filter(|c| c.is_alphanumeric()).count() >= 3;
        }
        if attr_allow_rules(text).iter().any(|r| *r == alias) {
            // The reason is whatever follows the closing `]`.
            let reason = text.rsplit(']').next().unwrap_or("");
            return reason.chars().filter(|c| c.is_alphanumeric()).count() >= 3;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        lint_source(Path::new("test.rs"), src, &LintOptions::default())
    }

    fn rules_fired(src: &str) -> Vec<&'static str> {
        lint(src).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn flags_unwrap_expect_panic() {
        let src = "fn f() { x.unwrap(); y.expect(\"msg\"); panic!(\"boom\"); }";
        assert_eq!(rules_fired(src), vec![RULE_NO_PANIC; 3]);
    }

    #[test]
    fn ignores_unwrap_in_strings_and_comments() {
        let src = "fn f() { let s = \".unwrap()\"; } // call .unwrap() here\n";
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn ignores_unwrap_or_variants() {
        let src = "fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 0); x.unwrap_or_default(); }";
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn cfg_test_module_exempt() {
        let src = "
            fn lib() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { x.unwrap(); panic!(\"fine in tests\"); }
            }
        ";
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn test_fn_outside_module_exempt() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn lib() { y.unwrap(); }";
        let diags = lint(src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn code_after_test_module_still_linted() {
        let src = "
            #[cfg(test)]
            mod tests { fn t() { a.unwrap(); } }
            fn lib() { b.unwrap(); }
        ";
        let diags = lint(src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn allow_comment_with_reason_suppresses() {
        let src = "
            fn f() {
                // audit: allow(no-panic) — the mutex cannot be poisoned here
                x.unwrap();
            }
        ";
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn allow_comment_without_reason_does_not_suppress() {
        let src = "fn f() {\n// audit: allow(no-panic)\nx.unwrap();\n}";
        assert_eq!(rules_fired(src), vec![RULE_NO_PANIC]);
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let src = "fn f() {\n// audit: allow(no-lossy-cast) — wrong rule\nx.unwrap();\n}";
        assert_eq!(rules_fired(src), vec![RULE_NO_PANIC]);
    }

    #[test]
    fn allow_scans_through_comment_block() {
        let src = "
            fn f() {
                // audit: allow(no-panic) — justified at the top of
                // a multi-line explanation block.
                x.unwrap();
            }
        ";
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn flags_narrow_casts_only_when_enabled() {
        let src = "fn f(x: usize) -> u32 { x as u32 }";
        assert_eq!(rules_fired(src), vec![RULE_NO_LOSSY_CAST]);
        let off = lint_source(
            Path::new("test.rs"),
            src,
            &LintOptions { lossy_casts: false, ..LintOptions::default() },
        );
        assert!(off.is_empty());
    }

    #[test]
    fn flags_try_from_saturating_to_max() {
        let src = "fn f(n: u64) -> usize { usize::try_from(n).unwrap_or(usize::MAX) }";
        assert_eq!(rules_fired(src), vec![RULE_NO_LOSSY_CAST]);
        let off = lint_source(
            Path::new("test.rs"),
            src,
            &LintOptions { lossy_casts: false, ..LintOptions::default() },
        );
        assert!(off.is_empty(), "rule is part of the lossy-cast toggle");
    }

    #[test]
    fn benign_unwrap_or_fallbacks_are_fine() {
        // Not a try_from receiver, or not a MAX fallback: no finding.
        assert!(rules_fired("fn f() { x.unwrap_or(0); }").is_empty());
        assert!(rules_fired("fn f(n: u64) { u32::try_from(n).unwrap_or(0); }").is_empty());
        assert!(rules_fired("fn f(m: Option<u64>) { m.unwrap_or(u64::MAX); }").is_empty());
    }

    #[test]
    fn allowed_try_from_saturation_suppressed() {
        let src = "
            fn f(n: u64) -> u32 {
                // audit: allow(no-lossy-cast) — n is bounded by the item count
                u32::try_from(n).unwrap_or(u32::MAX)
            }
        ";
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn widening_casts_are_fine() {
        let src = "fn f(x: u32) -> f64 { let _ = x as usize; x as f64 }";
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn undocumented_pub_fn_flagged() {
        let src = "pub fn naked() {}";
        let diags = lint(src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE_DOC_PUB_FN);
        assert!(diags[0].message.contains("naked"));
    }

    #[test]
    fn documented_pub_fn_ok() {
        assert!(rules_fired("/// Documented.\npub fn fine() {}").is_empty());
        assert!(rules_fired("/// Docs.\n#[inline]\npub fn attr_between() {}").is_empty());
        assert!(rules_fired("#[doc = \"x\"]\npub fn doc_attr() {}").is_empty());
    }

    #[test]
    fn pub_crate_and_other_items_exempt() {
        assert!(rules_fired("pub(crate) fn internal() {}").is_empty());
        assert!(rules_fired("pub struct S;").is_empty());
        assert!(rules_fired("pub use foo::bar;").is_empty());
    }

    #[test]
    fn qualified_pub_fns_need_docs_too() {
        let src = "pub unsafe fn u() {}";
        // `unsafe` between pub and fn must not hide the fn.
        assert_eq!(rules_fired(src), vec![RULE_DOC_PUB_FN]);
        assert!(rules_fired("/// ok\npub const fn c() {}").is_empty());
    }

    #[test]
    fn diagnostics_carry_file_and_line() {
        let d = &lint("fn a() {}\nfn b() { x.unwrap(); }")[0];
        assert_eq!(d.line, 2);
        assert_eq!(d.file, Path::new("test.rs"));
        let shown = d.to_string();
        assert!(shown.contains("test.rs:2"), "{shown}");
        assert!(shown.contains("no-panic"), "{shown}");
    }
}
