//! Determinism & concurrency rules.
//!
//! Five token-level rules that make the workspace's reproducibility
//! guarantees *statically* checkable instead of relying solely on the
//! differential/chaos suites sampling the right schedule:
//!
//! - **`no-unordered-iter`** — iterating a `HashMap`/`HashSet` leaks hash
//!   order into results. Flagged in the deterministic crates unless the
//!   iteration is immediately sorted, collected into an ordered container,
//!   or fed into an order-insensitive sink (`count`, `min`, `max`, `any`,
//!   `all`, integer `sum`).
//! - **`no-entropy`** — `thread_rng`, `from_entropy`, `SystemTime::now`,
//!   and `Instant::now`-derived seeds inject run-to-run entropy. Timing-only
//!   `Instant::now` (no seed in the same statement) is fine.
//! - **`no-raw-spawn`** — `thread::spawn` bypasses the ordered `kucnet-par`
//!   pool; all compute parallelism must go through it so results reduce in
//!   index order. Long-lived service threads in `serve` are baselined.
//! - **`no-float-accum-order`** — `.sum::<f32>()`/`.fold(..)` over a
//!   par-produced collection is only deterministic if the reduction order
//!   is; the `kucnet_par::ordered_*` helpers make that explicit.
//! - **`lock-order`** — builds a per-crate lock-acquisition graph from
//!   `Mutex`/`RwLock` field names and flags pairs acquired in both orders
//!   (the classic AB/BA deadlock shape).
//!
//! All rules are token-stream heuristics, not type-checked analysis: names
//! are tracked by declaration-site type mentions, and acquisition "held"
//! scopes are over-approximated to the rest of the function body. False
//! positives are expected to be rare and are silenced with a
//! `// #[allow(kucnet::<rule>)] — <reason>` comment-annotation or recorded
//! in `audit_baseline.toml`. Known blind spots: locks reached through
//! free-function calls (the graph is per-body), `thread::Builder` spawns,
//! and hash maps aliased through untyped bindings.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::lexer::{tokenize, turbofish_after, Tok, TokKind};
use crate::rules::{allowed, next_code, test_code_mask, Diagnostic};

/// Rule name: forbid unordered `HashMap`/`HashSet` iteration.
pub const RULE_NO_UNORDERED_ITER: &str = "no-unordered-iter";
/// Rule name: forbid run-to-run entropy sources in deterministic crates.
pub const RULE_NO_ENTROPY: &str = "no-entropy";
/// Rule name: forbid `thread::spawn` outside the ordered pool crate.
pub const RULE_NO_RAW_SPAWN: &str = "no-raw-spawn";
/// Rule name: forbid order-sensitive float reductions of par results.
pub const RULE_NO_FLOAT_ACCUM: &str = "no-float-accum-order";
/// Rule name: flag cyclic lock-acquisition orders.
pub const RULE_LOCK_ORDER: &str = "lock-order";

/// Per-crate toggles for the concurrency rules. `lint_workspace` switches
/// the first three on only for the deterministic-crate allowlist; `serve`
/// and `bench` keep entropy/unordered iteration (timing, shuffled client
/// load) but still get `no-raw-spawn` and `lock-order`.
#[derive(Clone, Copy, Debug)]
pub struct ConcurrencyConfig {
    /// Enables `no-unordered-iter`.
    pub unordered_iter: bool,
    /// Enables `no-entropy`.
    pub entropy: bool,
    /// Enables `no-raw-spawn`.
    pub raw_spawn: bool,
    /// Enables `no-float-accum-order`.
    pub float_accum: bool,
    /// Enables `lock-order` (checked at directory granularity by
    /// [`lock_order_rules`], not per file).
    pub lock_order: bool,
}

impl Default for ConcurrencyConfig {
    fn default() -> Self {
        Self {
            unordered_iter: true,
            entropy: true,
            raw_spawn: true,
            float_accum: true,
            lock_order: true,
        }
    }
}

/// Iterator-producing methods on hash containers: reaching one of these in
/// a use chain means hash order escapes.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Order-insensitive sinks: a hash iteration ending in one of these
/// produces the same value for every iteration order.
const SINK_METHODS: [&str; 5] = ["count", "min", "max", "any", "all"];

/// Parallel-map entry points whose results are index-ordered but whose
/// float reductions must still be explicit.
const PAR_FNS: [&str; 3] = ["par_map", "par_map_with", "par_try_map_with"];

/// The blessed ordered-reduction helpers from `kucnet-par`.
const ORDERED_HELPERS: [&str; 3] = ["ordered_sum_f32", "ordered_sum_f64", "ordered_fold"];

/// Runs the per-file concurrency rules (everything except `lock-order`,
/// which needs the whole directory) and returns suppression-filtered
/// diagnostics. `skipped` is the test-code mask for `toks`.
pub fn file_rules(
    file: &Path,
    source: &str,
    toks: &[Tok],
    skipped: &[bool],
    cfg: &ConcurrencyConfig,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut dedupe: BTreeSet<(u32, &'static str)> = BTreeSet::new();
    let mut flag = |line: u32, rule: &'static str, message: String| {
        if dedupe.insert((line, rule)) && !allowed(source, line, rule) {
            out.push(Diagnostic {
                file: file.to_path_buf(),
                line,
                rule,
                message,
                fingerprint: String::new(),
            });
        }
    };
    if cfg.unordered_iter {
        unordered_iter_rule(toks, skipped, &mut flag);
    }
    if cfg.entropy {
        entropy_rule(toks, skipped, &mut flag);
    }
    if cfg.raw_spawn {
        raw_spawn_rule(toks, skipped, &mut flag);
    }
    if cfg.float_accum {
        float_accum_rule(toks, skipped, &mut flag);
    }
    out
}

/// Names declared (via `name: Type` ascription or a `let name = ...` whose
/// initializer mentions a hash container) as `HashMap`/`HashSet` values.
/// The flag is true when the declaration mentions *two or more* hash
/// container names — i.e. the value side is itself a hash container, so a
/// `.get(..)` result is still unordered.
fn tracked_hash_names(toks: &[Tok]) -> BTreeMap<String, bool> {
    let mut tracked = BTreeMap::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "let" {
            // `let [mut] NAME = <expr mentioning HashMap/HashSet> ;`
            let Some(mut n) = next_code(toks, i) else { continue };
            if toks[n].kind == TokKind::Ident && toks[n].text == "mut" {
                let Some(n2) = next_code(toks, n) else { continue };
                n = n2;
            }
            if toks[n].kind != TokKind::Ident {
                continue;
            }
            let name = toks[n].text.clone();
            let Some(eq) = next_code(toks, n) else { continue };
            if toks[eq].kind != TokKind::Punct('=') {
                continue; // `let name: T` is handled by the `:` pass below
            }
            let hashes = count_hash_idents(toks, eq + 1, stmt_end(toks, eq + 1));
            if hashes > 0 {
                tracked.insert(name, hashes >= 2);
            }
        } else if matches!(next_code(toks, i), Some(c) if toks[c].kind == TokKind::Punct(':')) {
            // `NAME: <type region>` — params, struct fields, typed lets.
            let colon = next_code(toks, i).unwrap_or(i);
            let end = type_region_end(toks, colon + 1);
            let hashes = count_hash_idents(toks, colon + 1, end);
            if hashes > 0 {
                tracked.insert(t.text.clone(), hashes >= 2);
            }
        }
    }
    tracked
}

/// Counts `HashMap`/`HashSet` identifiers in `toks[from..to]`.
fn count_hash_idents(toks: &[Tok], from: usize, to: usize) -> usize {
    toks[from..to.min(toks.len())]
        .iter()
        .filter(|t| t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet"))
        .count()
}

/// End (exclusive) of the type region starting at `from` (just past a `:`):
/// scans until a `, ; ) } = | {` at zero bracket/angle depth. `->` is
/// recognized so its `>` does not close an angle bracket.
fn type_region_end(toks: &[Tok], from: usize) -> usize {
    let mut depth = 0i64;
    let mut angle = 0i64;
    for k in from..toks.len() {
        match toks[k].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => {
                if depth == 0 {
                    return k;
                }
                depth -= 1;
            }
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => {
                if k > 0 && toks[k - 1].kind == TokKind::Punct('-') {
                    continue; // `->` in an fn-pointer type
                }
                angle -= 1;
                if angle < 0 {
                    return k;
                }
            }
            TokKind::Punct(',')
            | TokKind::Punct(';')
            | TokKind::Punct('=')
            | TokKind::Punct('|')
            | TokKind::Punct('{')
            | TokKind::Punct('}')
                if depth == 0 && angle == 0 =>
            {
                return k;
            }
            _ => {}
        }
    }
    toks.len()
}

/// First token of the statement containing `i`: walks backwards to just
/// past the nearest unmatched `{`/`(`/`[` or same-depth `;`.
fn stmt_start(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i64;
    let mut k = i;
    while k > 0 {
        match toks[k - 1].kind {
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth += 1,
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => {
                if depth == 0 {
                    return k;
                }
                depth -= 1;
            }
            TokKind::Punct(';') if depth == 0 => return k,
            _ => {}
        }
        k -= 1;
    }
    0
}

/// Token index of the `;` (or unmatched closer) ending the statement that
/// contains `i`; returns `toks.len()` at EOF. Blocks nested inside the
/// statement (match arms, closure bodies) are scanned through.
fn stmt_end(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i64;
    for k in i..toks.len() {
        match toks[k].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                if depth == 0 {
                    return k;
                }
                depth -= 1;
            }
            TokKind::Punct(';') if depth == 0 => return k,
            _ => {}
        }
    }
    toks.len()
}

/// One `.method(...)` chain step after token `j`; returns `(method_index,
/// index_of_closing_paren)` when `toks[j+1..]` starts `. m [::<..>] ( .. )`.
fn chain_step(toks: &[Tok], j: usize) -> Option<(usize, usize)> {
    let dot = next_code(toks, j)?;
    if toks[dot].kind != TokKind::Punct('.') {
        return None;
    }
    let m = next_code(toks, dot)?;
    if toks[m].kind != TokKind::Ident {
        return None;
    }
    // Skip an optional turbofish to the argument list.
    let mut open = next_code(toks, m)?;
    if toks[open].kind == TokKind::PathSep {
        let lt = next_code(toks, open)?;
        if toks[lt].kind != TokKind::Punct('<') {
            return None;
        }
        let mut angle = 0i64;
        let mut after = None;
        for k in lt..toks.len() {
            match toks[k].kind {
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => {
                    angle -= 1;
                    if angle == 0 {
                        after = next_code(toks, k);
                        break;
                    }
                }
                _ => {}
            }
        }
        open = after?;
    }
    if toks[open].kind != TokKind::Punct('(') {
        // Field access or a method without a call — not a chain step.
        return None;
    }
    let mut depth = 0i64;
    for k in open..toks.len() {
        match toks[k].kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some((m, k));
                }
            }
            _ => {}
        }
    }
    None
}

/// Collects the full method chain rooted at token `j` (a name or a closing
/// paren): returns the method-ident indices in order.
fn collect_chain(toks: &[Tok], mut j: usize) -> Vec<usize> {
    let mut methods = Vec::new();
    while let Some((m, close)) = chain_step(toks, j) {
        methods.push(m);
        j = close;
    }
    methods
}

/// `no-unordered-iter`: flags `for` loops over tracked hash names and
/// iterator-method chains on them, minus the sorted/sink exemptions.
fn unordered_iter_rule<F>(toks: &[Tok], skipped: &[bool], flag: &mut F)
where
    F: FnMut(u32, &'static str, String),
{
    let tracked = tracked_hash_names(toks);
    if tracked.is_empty() {
        return;
    }
    // for-loop headers: `for PAT in <header> {`.
    let mut header_ranges: Vec<(usize, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if skipped[i] || t.kind != TokKind::Ident || t.text != "for" {
            continue;
        }
        // `impl Trait for Type` has no `in`; `for<'a>` opens with `<`.
        let Some((header_start, header_end)) = for_header(toks, i) else { continue };
        header_ranges.push((header_start, header_end));
        for k in header_start..header_end {
            if toks[k].kind != TokKind::Ident {
                continue;
            }
            let Some(&value_is_hash) = tracked.get(&toks[k].text) else { continue };
            let methods = collect_chain(toks, k);
            let names: Vec<&str> = methods.iter().map(|&m| toks[m].text.as_str()).collect();
            let verdict = if names.is_empty() {
                true // iterated directly (possibly via `&`/`&mut`)
            } else if names.iter().any(|m| ITER_METHODS.contains(m)) {
                !chain_is_exempt(toks, &methods)
            } else if names[0] == "get" && value_is_hash {
                true // Option<&HashSet<_>> in a for header is iterated
            } else {
                // `m.len()`, `m.contains(..)`, unknown-returning methods:
                // no direct evidence that hash order escapes.
                false
            };
            if verdict {
                flag(
                    toks[i].line,
                    RULE_NO_UNORDERED_ITER,
                    format!(
                        "iterating hash container `{}` leaks nondeterministic order; use a \
                         BTree container, sort first, or annotate with \
                         `// #[allow(kucnet::unordered_iter)] — <reason>`",
                        toks[k].text
                    ),
                );
            }
            break; // judge only the first tracked name per header
        }
    }
    // Method chains outside for headers: `m.iter()...` must end ordered.
    for (i, t) in toks.iter().enumerate() {
        if skipped[i] || t.kind != TokKind::Ident {
            continue;
        }
        if !tracked.contains_key(&t.text) {
            continue;
        }
        if header_ranges.iter().any(|&(s, e)| i >= s && i < e) {
            continue; // already judged by the for-header pass
        }
        let methods = collect_chain(toks, i);
        if !methods.iter().any(|&m| ITER_METHODS.contains(&toks[m].text.as_str())) {
            continue;
        }
        if chain_is_exempt(toks, &methods) {
            continue;
        }
        flag(
            t.line,
            RULE_NO_UNORDERED_ITER,
            format!(
                "hash-order iteration of `{}` escapes into an ordered context; collect into \
                 a BTree container, sort the result, or annotate with \
                 `// #[allow(kucnet::unordered_iter)] — <reason>`",
                t.text
            ),
        );
    }
}

/// Bounds of a `for ... in <header> {` header, if the `for` at `i` is a
/// loop (not `impl ... for` or `for<'a>`).
fn for_header(toks: &[Tok], i: usize) -> Option<(usize, usize)> {
    if matches!(next_code(toks, i), Some(n) if toks[n].kind == TokKind::Punct('<')) {
        return None;
    }
    let mut depth = 0i64;
    let mut k = i + 1;
    let start = loop {
        let t = toks.get(k)?;
        match t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct('{') | TokKind::Punct(';') if depth == 0 => return None,
            TokKind::Ident if depth == 0 && t.text == "in" => break k + 1,
            _ => {}
        }
        k += 1;
    };
    let mut depth = 0i64;
    for k in start..toks.len() {
        match toks[k].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct('{') if depth == 0 => return Some((start, k)),
            _ => {}
        }
    }
    None
}

/// True when an iterator chain ends somewhere order-insensitive: a sink
/// method, an integer `sum`, `collect` into an ordered (or still-hashed)
/// container, or a `let`-bound vector that the *next* statement sorts.
fn chain_is_exempt(toks: &[Tok], methods: &[usize]) -> bool {
    for &m in methods {
        let name = toks[m].text.as_str();
        if SINK_METHODS.contains(&name) || name.starts_with("sort") {
            return true;
        }
        if name == "sum" || name == "product" {
            // Integer reduction is order-insensitive; float is not.
            match turbofish_after(toks, m) {
                Some(tys) => {
                    if !tys.iter().any(|t| t == "f32" || t == "f64") {
                        return true;
                    }
                }
                None => return false,
            }
        }
        if name == "collect" {
            if let Some(tys) = turbofish_after(toks, m) {
                if collects_reorderable(&tys) {
                    return true;
                }
            } else if let Some(first) = methods.first() {
                // No turbofish: the target type is on the `let`, or the
                // binding is sorted by the very next statement.
                let s = stmt_start(toks, *first);
                if let_type_is_reorderable(toks, s) || next_stmt_sorts_binding(toks, s) {
                    return true;
                }
            }
        }
    }
    false
}

/// Collection targets that either restore a canonical order (BTree*,
/// BinaryHeap) or stay unordered-but-unobserved (Hash*): both are fine —
/// a later leaky iteration of the re-collected hash gets its own finding.
fn collects_reorderable(type_names: &[String]) -> bool {
    type_names
        .iter()
        .any(|t| t.starts_with("BTree") || t == "BinaryHeap" || t == "HashMap" || t == "HashSet")
}

/// True when the statement starting at `s` is `let [mut] NAME: <ty> = ...`
/// with an ordered/hash collection type.
fn let_type_is_reorderable(toks: &[Tok], s: usize) -> bool {
    if toks.get(s).map(|t| t.text.as_str()) != Some("let") {
        return false;
    }
    let end = stmt_end(toks, s);
    let mut names = Vec::new();
    for t in &toks[s..end.min(toks.len())] {
        if t.kind == TokKind::Punct('=') {
            break;
        }
        if t.kind == TokKind::Ident {
            names.push(t.text.clone());
        }
    }
    collects_reorderable(&names)
}

/// True when the statement at `s` is `let [mut] NAME = ...;` and the next
/// statement starts `NAME.sort...`.
fn next_stmt_sorts_binding(toks: &[Tok], s: usize) -> bool {
    if toks.get(s).map(|t| t.text.as_str()) != Some("let") {
        return false;
    }
    let Some(mut n) = next_code(toks, s) else { return false };
    if toks[n].kind == TokKind::Ident && toks[n].text == "mut" {
        match next_code(toks, n) {
            Some(n2) => n = n2,
            None => return false,
        }
    }
    if toks[n].kind != TokKind::Ident {
        return false;
    }
    let name = toks[n].text.as_str();
    let semi = stmt_end(toks, n);
    let Some(first) = next_code(toks, semi) else { return false };
    if toks[first].kind != TokKind::Ident || toks[first].text != name {
        return false;
    }
    let Some(dot) = next_code(toks, first) else { return false };
    let Some(meth) = next_code(toks, dot) else { return false };
    toks[dot].kind == TokKind::Punct('.')
        && toks[meth].kind == TokKind::Ident
        && toks[meth].text.starts_with("sort")
}

/// `no-entropy`: flags run-to-run entropy sources. `Instant::now` is only
/// an entropy source when the same statement derives a seed from it.
fn entropy_rule<F>(toks: &[Tok], skipped: &[bool], flag: &mut F)
where
    F: FnMut(u32, &'static str, String),
{
    const SEED_HINTS: [&str; 5] = ["seed", "seed_from_u64", "from_seed", "SmallRng", "StdRng"];
    for (i, t) in toks.iter().enumerate() {
        if skipped[i] || t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "thread_rng" => {
                if matches!(next_code(toks, i), Some(n) if toks[n].kind == TokKind::Punct('(')) {
                    flag(
                        t.line,
                        RULE_NO_ENTROPY,
                        "thread_rng() draws OS entropy; seed a SmallRng deterministically \
                         instead"
                            .to_string(),
                    );
                }
            }
            "from_entropy" => {
                flag(
                    t.line,
                    RULE_NO_ENTROPY,
                    "from_entropy seeds from the OS; derive the seed from the run config"
                        .to_string(),
                );
            }
            "SystemTime" | "Instant" => {
                let Some(sep) = next_code(toks, i) else { continue };
                let Some(now) = next_code(toks, sep) else { continue };
                if toks[sep].kind != TokKind::PathSep
                    || toks[now].kind != TokKind::Ident
                    || toks[now].text != "now"
                {
                    continue;
                }
                let is_seed_context = t.text == "SystemTime" || {
                    let (s, e) = (stmt_start(toks, i), stmt_end(toks, i));
                    toks[s..e.min(toks.len())]
                        .iter()
                        .any(|t| t.kind == TokKind::Ident && SEED_HINTS.contains(&t.text.as_str()))
                };
                if is_seed_context {
                    flag(
                        t.line,
                        RULE_NO_ENTROPY,
                        format!(
                            "{}::now() makes the run depend on wall-clock state; derive \
                             seeds from the run config",
                            t.text
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// `no-raw-spawn`: flags `thread::spawn` (any path ending in it).
fn raw_spawn_rule<F>(toks: &[Tok], skipped: &[bool], flag: &mut F)
where
    F: FnMut(u32, &'static str, String),
{
    for (i, t) in toks.iter().enumerate() {
        if skipped[i] || t.kind != TokKind::Ident || t.text != "thread" {
            continue;
        }
        let Some(sep) = next_code(toks, i) else { continue };
        let Some(sp) = next_code(toks, sep) else { continue };
        if toks[sep].kind == TokKind::PathSep
            && toks[sp].kind == TokKind::Ident
            && toks[sp].text == "spawn"
        {
            flag(
                t.line,
                RULE_NO_RAW_SPAWN,
                "raw thread::spawn bypasses the ordered kucnet-par pool; use par_map/\
                 par_map_with (or baseline a justified long-lived service thread)"
                    .to_string(),
            );
        }
    }
}

/// `no-float-accum-order`: flags `.sum::<f32|f64>()` / `.fold(float, ..)`
/// in a statement whose receiver expression involves a par fn or a binding
/// produced by one, unless the statement uses the `ordered_*` helpers.
fn float_accum_rule<F>(toks: &[Tok], skipped: &[bool], flag: &mut F)
where
    F: FnMut(u32, &'static str, String),
{
    // Bindings whose initializer mentions a par fn.
    let mut par_vars: BTreeSet<String> = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "let" {
            continue;
        }
        let Some(mut n) = next_code(toks, i) else { continue };
        if toks[n].kind == TokKind::Ident && toks[n].text == "mut" {
            match next_code(toks, n) {
                Some(n2) => n = n2,
                None => continue,
            }
        }
        if toks[n].kind != TokKind::Ident {
            continue;
        }
        let end = stmt_end(toks, n);
        if toks[n + 1..end.min(toks.len())]
            .iter()
            .any(|t| t.kind == TokKind::Ident && PAR_FNS.contains(&t.text.as_str()))
        {
            par_vars.insert(toks[n].text.clone());
        }
    }

    for (i, t) in toks.iter().enumerate() {
        if skipped[i] || t.kind != TokKind::Ident {
            continue;
        }
        let is_sum = t.text == "sum";
        let is_fold = t.text == "fold";
        if !is_sum && !is_fold {
            continue;
        }
        // Must be a call: `.sum::<..>()` / `.fold(..)`.
        let called = match next_code(toks, i) {
            Some(n) if toks[n].kind == TokKind::Punct('(') => true,
            Some(n) if toks[n].kind == TokKind::PathSep => true, // turbofish
            _ => false,
        };
        if !called {
            continue;
        }
        let s = stmt_start(toks, i);
        let e = stmt_end(toks, i);
        let stmt = &toks[s..e.min(toks.len())];
        if stmt
            .iter()
            .any(|t| t.kind == TokKind::Ident && ORDERED_HELPERS.contains(&t.text.as_str()))
        {
            continue;
        }
        // The par producer must sit at the same (or outer) bracket depth as
        // the reduction — a fold *inside* a par closure is a different,
        // per-item reduction and is fine.
        let depth_at = |target: usize| -> i64 {
            let mut d = 0i64;
            for t in &toks[s..target] {
                match t.kind {
                    TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => d += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => d -= 1,
                    _ => {}
                }
            }
            d
        };
        let red_depth = depth_at(i);
        let par_context = (s..i).any(|k| {
            toks[k].kind == TokKind::Ident
                && (PAR_FNS.contains(&toks[k].text.as_str()) || par_vars.contains(&toks[k].text))
                && depth_at(k) >= red_depth
        });
        if !par_context {
            continue;
        }
        let is_float = if is_sum {
            match turbofish_after(toks, i) {
                Some(tys) => tys.iter().any(|t| t == "f32" || t == "f64"),
                None => true, // unknown element type: be conservative
            }
        } else {
            fold_seed_is_float(toks, i)
        };
        if is_float {
            flag(
                t.line,
                RULE_NO_FLOAT_ACCUM,
                format!(
                    "float `{}` over a par-produced collection depends on reduction order; \
                     use kucnet_par::ordered_sum_f32/ordered_sum_f64/ordered_fold",
                    t.text
                ),
            );
        }
    }
}

/// Inspects the first argument of the `fold(` call at ident `i`: a float
/// literal or f32/f64 mention means a float accumulator; a bare integer
/// literal means an order-insensitive integer fold. Unknown counts as float.
fn fold_seed_is_float(toks: &[Tok], i: usize) -> bool {
    let Some(open) = next_code(toks, i) else { return true };
    if toks[open].kind != TokKind::Punct('(') {
        return true;
    }
    let mut depth = 0i64;
    for t in toks.iter().skip(open) {
        match &t.kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return true; // no comma seen: opaque seed expression
                }
            }
            TokKind::Punct(',') if depth == 1 => return true, // non-literal seed
            TokKind::Literal if depth == 1 => {
                let txt = &t.text;
                return txt.contains('.') || txt.ends_with("f32") || txt.ends_with("f64");
            }
            TokKind::Ident if depth == 1 && (t.text == "f32" || t.text == "f64") => return true,
            TokKind::Ident if depth == 1 => return true, // variable seed: conservative
            _ => {}
        }
    }
    true
}

/// One lock acquisition inside a function body.
struct Acquisition {
    lock: String,
    line: u32,
    stmt: usize,
    held: bool,
}

/// `lock-order`: runs at directory granularity over every file's source,
/// building one acquisition graph per directory (≈ one per crate) from
/// `Mutex`/`RwLock`-typed field/binding names, and flags every pair of
/// locks acquired in both orders. Intra-function only: a lock taken by a
/// callee is invisible, which keeps the rule fast and false-cycle-free at
/// the cost of missing cross-function inversions.
pub fn lock_order_rules(files: &[(PathBuf, String)]) -> Vec<Diagnostic> {
    // Lock name -> declared anywhere in this directory.
    let mut locks: BTreeSet<String> = BTreeSet::new();
    let tokenized: Vec<(usize, Vec<Tok>)> =
        files.iter().enumerate().map(|(fi, (_, src))| (fi, tokenize(src))).collect();
    for (_, toks) in &tokenized {
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let Some(colon) = next_code(toks, i) else { continue };
            if toks[colon].kind != TokKind::Punct(':') {
                continue;
            }
            let end = type_region_end(toks, colon + 1);
            if toks[colon + 1..end.min(toks.len())]
                .iter()
                .any(|t| t.kind == TokKind::Ident && (t.text == "Mutex" || t.text == "RwLock"))
            {
                locks.insert(t.text.clone());
            }
        }
    }
    if locks.len() < 2 {
        return Vec::new();
    }

    // Edge (a, b): b acquired while a (over-approximately) held. Keep the
    // first site per edge for deterministic reporting.
    let mut edges: BTreeMap<(String, String), (usize, u32)> = BTreeMap::new();
    for (fi, toks) in &tokenized {
        let skipped = test_code_mask(toks);
        for (i, t) in toks.iter().enumerate() {
            if skipped[i] || t.kind != TokKind::Ident || t.text != "fn" {
                continue;
            }
            let Some(open) = (i..toks.len()).find(|&k| toks[k].kind == TokKind::Punct('{')) else {
                continue;
            };
            let mut depth = 0i64;
            let mut close = open;
            for k in open..toks.len() {
                match toks[k].kind {
                    TokKind::Punct('{') => depth += 1,
                    TokKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            close = k;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let mut acqs: Vec<Acquisition> = Vec::new();
            for k in open..close {
                if toks[k].kind != TokKind::Ident || !locks.contains(&toks[k].text) {
                    continue;
                }
                let Some((m, _)) = chain_step(toks, k) else { continue };
                let meth = toks[m].text.as_str();
                if meth != "lock" && meth != "read" && meth != "write" {
                    continue;
                }
                let s = stmt_start(toks, k);
                // Guard bound by let / if let / while let / match lives past
                // the statement; a bare expression statement drops it at `;`.
                let held = matches!(
                    toks.get(s).map(|t| t.text.as_str()),
                    Some("let") | Some("if") | Some("while") | Some("match") | Some("for")
                );
                acqs.push(Acquisition {
                    lock: toks[k].text.clone(),
                    line: toks[k].line,
                    stmt: s,
                    held,
                });
            }
            for a in 0..acqs.len() {
                for b in (a + 1)..acqs.len() {
                    if acqs[a].lock == acqs[b].lock {
                        continue; // re-acquisition is a different hazard class
                    }
                    if acqs[a].held || acqs[a].stmt == acqs[b].stmt {
                        edges
                            .entry((acqs[a].lock.clone(), acqs[b].lock.clone()))
                            .or_insert((*fi, acqs[b].line));
                    }
                }
            }
        }
    }

    let mut out = Vec::new();
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    for ((a, b), &(fi, line)) in &edges {
        if !edges.contains_key(&(b.clone(), a.clone())) {
            continue;
        }
        let key = if a < b { (a.clone(), b.clone()) } else { (b.clone(), a.clone()) };
        if !reported.insert(key) {
            continue;
        }
        let (file, source) = &files[fi];
        if allowed(source, line, RULE_LOCK_ORDER) {
            continue;
        }
        out.push(Diagnostic {
            file: file.clone(),
            line,
            rule: RULE_LOCK_ORDER,
            message: format!(
                "locks `{a}` and `{b}` are acquired in both orders across this crate \
                 (AB/BA deadlock shape); pick one global order"
            ),
            fingerprint: String::new(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{lint_source, LintOptions};

    fn rules_fired(src: &str) -> Vec<&'static str> {
        lint_source(Path::new("t.rs"), src, &LintOptions::default())
            .into_iter()
            .map(|d| d.rule)
            .collect()
    }

    #[test]
    fn direct_hash_iteration_flagged() {
        let src = "fn f(m: &std::collections::HashMap<u32, u32>) { for (k, v) in m { g(k, v); } }";
        assert_eq!(rules_fired(src), vec![RULE_NO_UNORDERED_ITER]);
    }

    #[test]
    fn hash_lookup_is_fine() {
        let src = "fn f(m: &HashMap<u32, u32>) -> Option<u32> { m.get(&3).copied() }";
        assert!(rules_fired(src).is_empty());
        let len = "fn f(m: &HashMap<u32, u32>) { for i in 0..m.len() { g(i); } }";
        assert!(rules_fired(len).is_empty());
    }

    #[test]
    fn sink_and_sorted_exemptions() {
        let count = "fn f(m: &HashMap<u32, u32>) -> usize { m.values().count() }";
        assert!(rules_fired(count).is_empty());
        let int_sum = "fn f(m: &HashMap<u32, u32>) -> u32 { m.values().sum::<u32>() }";
        assert!(rules_fired(int_sum).is_empty());
        let btree = "fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n    \
                     m.keys().copied().collect::<std::collections::BTreeSet<u32>>()\
                     .into_iter().collect()\n}";
        assert!(rules_fired(btree).is_empty());
        let sorted_next = "fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n    \
                           let mut ks: Vec<u32> = m.keys().copied().collect();\n    \
                           ks.sort_unstable();\n    ks\n}";
        assert!(rules_fired(sorted_next).is_empty());
    }

    #[test]
    fn float_sum_of_hash_values_still_flagged() {
        let src = "fn f(m: &HashMap<u32, f32>) -> f32 { m.values().sum::<f32>() }";
        assert_eq!(rules_fired(src), vec![RULE_NO_UNORDERED_ITER]);
    }

    #[test]
    fn unordered_collect_to_vec_flagged() {
        let src = "fn f(m: &HashMap<u32, u32>) -> Vec<u32> { m.keys().copied().collect() }";
        assert_eq!(rules_fired(src), vec![RULE_NO_UNORDERED_ITER]);
    }

    #[test]
    fn get_of_hash_valued_map_in_for_header_flagged() {
        let src = "fn f(m: &HashMap<u32, HashSet<u32>>, e: &HashSet<u32>) {\n    \
                   for i in m.get(&1).unwrap_or(e) { g(i); }\n}";
        assert_eq!(rules_fired(src), vec![RULE_NO_UNORDERED_ITER]);
    }

    #[test]
    fn attr_annotation_suppresses_unordered_iter() {
        let src = "fn f(m: &HashSet<u32>, out: &mut [bool]) {\n    \
                   // #[allow(kucnet::unordered_iter)] — distinct-index writes commute\n    \
                   for &i in m { out[i as usize] = true; }\n}";
        let diags = lint_source(
            Path::new("t.rs"),
            src,
            &LintOptions { lossy_casts: false, ..LintOptions::default() },
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn entropy_sources_flagged_timing_exempt() {
        assert_eq!(rules_fired("fn f() -> u64 { thread_rng().next_u64() }"), vec![RULE_NO_ENTROPY]);
        assert_eq!(rules_fired("fn f() -> R { SmallRng::from_entropy() }"), vec![RULE_NO_ENTROPY]);
        assert_eq!(rules_fired("fn f() -> T { SystemTime::now() }"), vec![RULE_NO_ENTROPY]);
        let seeded = "fn f() { let seed = Instant::now().elapsed().as_nanos() as u64;\n\
                      let rng = SmallRng::seed_from_u64(seed); g(rng); }";
        assert!(rules_fired(seeded).contains(&RULE_NO_ENTROPY));
        let timing = "fn f() { let started = std::time::Instant::now(); g(started.elapsed()); }";
        assert!(rules_fired(timing).is_empty());
    }

    #[test]
    fn raw_spawn_flagged_scope_exempt() {
        assert_eq!(rules_fired("fn f() { std::thread::spawn(|| 1); }"), vec![RULE_NO_RAW_SPAWN]);
        assert!(rules_fired("fn f() { std::thread::scope(|s| { s.spawn(|| 1); }); }").is_empty());
    }

    #[test]
    fn float_accum_over_par_results_flagged() {
        let sum = "fn f(t: usize) -> f32 {\n    \
                   let parts = kucnet_par::par_map(t, 8, |i| i as f32);\n    \
                   parts.iter().sum::<f32>()\n}";
        assert_eq!(rules_fired(sum), vec![RULE_NO_FLOAT_ACCUM]);
        let fold = "fn f(t: usize) -> f32 {\n    \
                    kucnet_par::par_map(t, 8, |i| i as f32).into_iter().fold(0.0, |a, b| a + b)\n}";
        assert_eq!(rules_fired(fold), vec![RULE_NO_FLOAT_ACCUM]);
    }

    #[test]
    fn float_accum_exemptions() {
        // fold inside the par closure reduces per-item state, not results.
        let inner = "fn f(t: usize) -> Vec<f32> {\n    \
                     kucnet_par::par_map(t, 8, |i| v[i].iter().fold(0.0, |a, b| a + b))\n}";
        assert!(rules_fired(inner).is_empty());
        // Integer sums are order-insensitive.
        let int = "fn f(t: usize) -> usize {\n    \
                   let parts = kucnet_par::par_map(t, 8, |i| i);\n    \
                   parts.iter().sum::<usize>()\n}";
        assert!(rules_fired(int).is_empty());
        // The blessed helper is the fix.
        let helper = "fn f(t: usize) -> f32 {\n    \
                      let parts = kucnet_par::par_map(t, 8, |i| i as f32);\n    \
                      kucnet_par::ordered_sum_f32(&parts)\n}";
        assert!(rules_fired(helper).is_empty());
        // Plain (non-par) folds are out of scope.
        assert!(
            rules_fired("fn f(v: &[f32]) -> f32 { v.iter().fold(0.0, |a, b| a + b) }").is_empty()
        );
    }

    #[test]
    fn lock_order_cycle_detected_once() {
        let src = "pub struct P { a: Mutex<u32>, b: Mutex<u32> }\n\
                   impl P {\n\
                   fn ab(&self) -> u32 { let ga = self.a.lock(); let gb = self.b.lock(); *ga + *gb }\n\
                   fn ba(&self) -> u32 { let gb = self.b.lock(); let ga = self.a.lock(); *ga - *gb }\n\
                   }";
        let diags = lock_order_rules(&[(PathBuf::from("t.rs"), src.to_string())]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_LOCK_ORDER);
    }

    #[test]
    fn consistent_lock_order_clean() {
        let src = "pub struct P { a: Mutex<u32>, b: Mutex<u32> }\n\
                   impl P {\n\
                   fn x(&self) -> u32 { let ga = self.a.lock(); let gb = self.b.lock(); *ga + *gb }\n\
                   fn y(&self) -> u32 { let ga = self.a.lock(); let gb = self.b.lock(); *ga - *gb }\n\
                   }";
        assert!(lock_order_rules(&[(PathBuf::from("t.rs"), src.to_string())]).is_empty());
        // Dropped-before-reacquire (expression statement) builds no edge.
        let seq = "pub struct P { a: Mutex<u32>, b: Mutex<u32> }\n\
                   impl P {\n\
                   fn x(&self) { self.a.lock().take(); self.b.lock().take(); }\n\
                   fn y(&self) { self.b.lock().take(); self.a.lock().take(); }\n\
                   }";
        assert!(lock_order_rules(&[(PathBuf::from("t.rs"), seq.to_string())]).is_empty());
    }

    #[test]
    fn test_code_is_exempt_from_concurrency_rules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(m: &HashMap<u32, u32>) {\n        \
                   for k in m.keys() { g(k); }\n        std::thread::spawn(|| 1);\n    }\n}";
        assert!(rules_fired(src).is_empty());
    }
}
