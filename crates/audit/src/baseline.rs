//! The ratcheting suppression baseline.
//!
//! `audit_baseline.toml` at the repo root records every *justified, already
//! known* finding as `(file, rule, fingerprint)`. The gate then enforces
//! two directions of monotonicity:
//!
//! - **no new debt** — any finding not in the baseline fails the audit;
//! - **no baseline growth** — `scripts/audit_ratchet.sh` fails if the file
//!   gains entries relative to the committed copy, so the only allowed
//!   edit over time is shrinking it.
//!
//! Fingerprints hash the file path, rule, whitespace-normalized source line
//! text, and an occurrence index (FNV-1a 64), so findings survive
//! line-number drift from unrelated edits but change when the flagged code
//! itself changes — exactly when a human should re-justify the entry.
//!
//! The file format is a hand-parsed TOML subset (`[[finding]]` tables of
//! `key = "value"` pairs) because the workspace vendors no TOML crate.

use std::collections::BTreeSet;
use std::path::Path;

use crate::rules::Diagnostic;

/// One baselined (suppressed) finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Repo-relative file path, forward slashes.
    pub file: String,
    /// Rule name.
    pub rule: String,
    /// Fingerprint as produced by [`fingerprint`].
    pub fingerprint: String,
    /// Free-form human justification (optional in the file).
    pub note: String,
}

/// The outcome of gating raw diagnostics through the baseline.
#[derive(Clone, Debug, Default)]
pub struct GatedReport {
    /// Findings not covered by the baseline: these fail the audit.
    pub new: Vec<Diagnostic>,
    /// Findings matched (and silenced) by a baseline entry.
    pub suppressed: Vec<Diagnostic>,
    /// Baseline entries that matched nothing — stale debt records that
    /// should be deleted (reported as warnings, asserted empty in tests).
    pub stale: Vec<BaselineEntry>,
}

/// FNV-1a 64-bit over `file|rule|normalized line|occurrence`, rendered as
/// 16 hex digits.
pub fn fingerprint(file: &str, rule: &str, line_text: &str, occurrence: usize) -> String {
    let norm = normalize_line(line_text);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{file}|{rule}|{norm}|{occurrence}").bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Collapses runs of whitespace to single spaces and trims, so pure
/// reformatting does not invalidate fingerprints.
fn normalize_line(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Stamps [`Diagnostic::fingerprint`] for every diagnostic of one file,
/// numbering repeated `(rule, line text)` pairs by occurrence so two
/// identical violations on identical lines stay distinguishable.
pub fn stamp_fingerprints(diags: &mut [Diagnostic], file_key: &str, source: &str) {
    let lines: Vec<&str> = source.lines().collect();
    let mut seen: Vec<(String, String)> = Vec::new();
    for d in diags.iter_mut() {
        let text = lines.get(d.line as usize - 1).copied().unwrap_or("");
        let key = (d.rule.to_string(), normalize_line(text));
        let occurrence = seen.iter().filter(|k| **k == key).count();
        seen.push(key);
        d.fingerprint = fingerprint(file_key, d.rule, text, occurrence);
    }
}

/// Splits diagnostics into new vs. suppressed against `entries` and
/// reports which entries went stale. Matching is exact on
/// `(file, rule, fingerprint)`.
pub fn apply(diags: Vec<Diagnostic>, entries: &[BaselineEntry]) -> GatedReport {
    let mut report = GatedReport::default();
    let mut used: BTreeSet<usize> = BTreeSet::new();
    for d in diags {
        let file_key = path_key(&d.file);
        let hit = entries.iter().enumerate().find(|(_, e)| {
            e.file == file_key && e.rule == d.rule && e.fingerprint == d.fingerprint
        });
        match hit {
            Some((idx, _)) => {
                used.insert(idx);
                report.suppressed.push(d);
            }
            None => report.new.push(d),
        }
    }
    for (idx, e) in entries.iter().enumerate() {
        if !used.contains(&idx) {
            report.stale.push(e.clone());
        }
    }
    report
}

/// Canonical string form of a diagnostic path: forward slashes.
pub fn path_key(file: &Path) -> String {
    file.to_string_lossy().replace('\\', "/")
}

/// Parses the baseline file text. Unknown keys are kept only for `note`;
/// an entry missing `file`, `rule`, or `fingerprint` is a hard error (exit
/// code 2 territory — a malformed baseline must not silently pass the gate).
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut entries = Vec::new();
    let mut current: Option<BaselineEntry> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[finding]]" {
            if let Some(entry) = current.take() {
                entries.push(validate(entry, lineno)?);
            }
            current = Some(BaselineEntry {
                file: String::new(),
                rule: String::new(),
                fingerprint: String::new(),
                note: String::new(),
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("baseline line {}: expected `key = \"value\"`", lineno + 1));
        };
        let key = key.trim();
        let value = value.trim();
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("baseline line {}: value must be double-quoted", lineno + 1))?;
        let Some(entry) = current.as_mut() else {
            return Err(format!("baseline line {}: key outside any [[finding]]", lineno + 1));
        };
        match key {
            "file" => entry.file = value.to_string(),
            "rule" => entry.rule = value.to_string(),
            "fingerprint" => entry.fingerprint = value.to_string(),
            "note" => entry.note = value.to_string(),
            other => {
                return Err(format!("baseline line {}: unknown key `{other}`", lineno + 1));
            }
        }
    }
    if let Some(entry) = current.take() {
        entries.push(validate(entry, text.lines().count())?);
    }
    Ok(entries)
}

fn validate(entry: BaselineEntry, lineno: usize) -> Result<BaselineEntry, String> {
    if entry.file.is_empty() || entry.rule.is_empty() || entry.fingerprint.is_empty() {
        return Err(format!(
            "baseline entry ending near line {}: `file`, `rule`, and `fingerprint` are required",
            lineno + 1
        ));
    }
    Ok(entry)
}

/// Renders entries back to the on-disk format (used to (re)generate the
/// baseline; output is stable so diffs stay reviewable).
pub fn render(entries: &[BaselineEntry]) -> String {
    let mut out = String::from(
        "# kucnet audit suppression baseline.\n\
         # Every entry is a justified, known finding; the gate fails on any finding\n\
         # NOT listed here, and scripts/audit_ratchet.sh fails if this file grows.\n\
         # Regenerate fingerprints with: cargo run -p kucnet-audit --bin audit -- --json\n",
    );
    for e in entries {
        out.push_str("\n[[finding]]\n");
        out.push_str(&format!("file = \"{}\"\n", e.file));
        out.push_str(&format!("rule = \"{}\"\n", e.rule));
        out.push_str(&format!("fingerprint = \"{}\"\n", e.fingerprint));
        if !e.note.is_empty() {
            out.push_str(&format!("note = \"{}\"\n", e.note));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn diag(file: &str, line: u32, rule: &'static str, fp: &str) -> Diagnostic {
        Diagnostic {
            file: PathBuf::from(file),
            line,
            rule,
            message: String::new(),
            fingerprint: fp.to_string(),
        }
    }

    #[test]
    fn fingerprint_stable_under_reformat_and_line_drift() {
        let a = fingerprint("a.rs", "no-raw-spawn", "  let h =  thread::spawn(f);", 0);
        let b = fingerprint("a.rs", "no-raw-spawn", "let h = thread::spawn(f);", 0);
        assert_eq!(a, b, "whitespace-normalized");
        let c = fingerprint("a.rs", "no-raw-spawn", "let h = thread::spawn(g);", 0);
        assert_ne!(a, c, "code change invalidates");
        let d = fingerprint("a.rs", "no-raw-spawn", "let h = thread::spawn(f);", 1);
        assert_ne!(a, d, "occurrence disambiguates duplicates");
    }

    #[test]
    fn stamp_numbers_identical_lines_by_occurrence() {
        let src = "x();\nspawn();\nspawn();\n";
        let mut diags =
            vec![diag("a.rs", 2, "no-raw-spawn", ""), diag("a.rs", 3, "no-raw-spawn", "")];
        stamp_fingerprints(&mut diags, "a.rs", src);
        assert_ne!(diags[0].fingerprint, diags[1].fingerprint);
        assert_eq!(diags[0].fingerprint.len(), 16);
    }

    #[test]
    fn roundtrip_parse_render() {
        let entries = vec![
            BaselineEntry {
                file: "crates/serve/src/batch.rs".into(),
                rule: "no-raw-spawn".into(),
                fingerprint: "0123456789abcdef".into(),
                note: "long-lived batcher thread".into(),
            },
            BaselineEntry {
                file: "crates/serve/src/server.rs".into(),
                rule: "no-raw-spawn".into(),
                fingerprint: "fedcba9876543210".into(),
                note: String::new(),
            },
        ];
        let parsed = parse(&render(&entries)).expect("roundtrip parses");
        assert_eq!(parsed, entries);
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        assert!(parse("[[finding]]\nfile = \"a.rs\"\n").is_err(), "missing fields");
        assert!(parse("file = \"a.rs\"\n").is_err(), "key outside table");
        assert!(parse("[[finding]]\nfile = a.rs\n").is_err(), "unquoted value");
        assert!(parse("").expect("empty ok").is_empty());
        assert!(parse("# only comments\n").expect("comments ok").is_empty());
    }

    #[test]
    fn apply_splits_new_suppressed_stale() {
        let entries = vec![
            BaselineEntry {
                file: "a.rs".into(),
                rule: "no-raw-spawn".into(),
                fingerprint: "aaaa".into(),
                note: String::new(),
            },
            BaselineEntry {
                file: "gone.rs".into(),
                rule: "no-raw-spawn".into(),
                fingerprint: "dddd".into(),
                note: String::new(),
            },
        ];
        let report = apply(
            vec![diag("a.rs", 1, "no-raw-spawn", "aaaa"), diag("b.rs", 2, "no-entropy", "bbbb")],
            &entries,
        );
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.new.len(), 1);
        assert_eq!(report.new[0].fingerprint, "bbbb");
        assert_eq!(report.stale.len(), 1);
        assert_eq!(report.stale[0].file, "gone.rs");
    }
}
