//! Pins the `audit` binary's CLI contract: exit codes (0 clean, 1 findings,
//! 2 config/IO error) and the `--json` output shape. Scripts
//! (`scripts/check.sh`, `scripts/audit_ratchet.sh`) depend on exactly this.

use std::path::Path;
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_audit")).args(args).output().expect("audit binary runs")
}

fn fixture(rel: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(rel).display().to_string()
}

#[test]
fn clean_dir_exits_zero() {
    let out = run(&["--lint-dir", &fixture("good_concurrency/src")]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn findings_exit_one() {
    let out = run(&["--lint-dir", &fixture("bad_concurrency/raw_spawn/src")]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("no-raw-spawn"),
        "finding printed on stdout"
    );
}

#[test]
fn missing_dir_exits_two() {
    let out = run(&["--lint-dir", &fixture("does_not_exist")]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bad_usage_exits_two() {
    let out = run(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn json_mode_emits_machine_readable_findings() {
    let out = run(&["--lint-dir", &fixture("bad_concurrency/raw_spawn/src"), "--json"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.trim();
    assert!(line.starts_with('[') && line.ends_with(']'), "one JSON array: {line}");
    for key in [
        "\"file\":",
        "\"line\":",
        "\"rule\":\"no-raw-spawn\"",
        "\"fingerprint\":",
        "\"suppressed\":false",
        "\"message\":",
    ] {
        assert!(line.contains(key), "missing {key} in {line}");
    }
    let fp = line.split("\"fingerprint\":\"").nth(1).and_then(|s| s.split('"').next());
    let fp = fp.expect("fingerprint field present");
    assert_eq!(fp.len(), 16, "16 hex digits, got {fp}");
    assert!(fp.chars().all(|c| c.is_ascii_hexdigit()));
    // Per-rule counts go to stderr, keeping stdout pure JSON.
    assert!(String::from_utf8_lossy(&out.stderr).contains("rule no-raw-spawn: 1 new"));
}

#[test]
fn json_clean_dir_emits_empty_array() {
    let out = run(&["--lint-dir", &fixture("good_concurrency/src"), "--json"]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "[]");
}

#[test]
fn workspace_json_gate_is_clean_and_baselined() {
    let out = run(&["--json"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace gate must pass against the committed baseline; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The serve service threads are present but marked suppressed.
    assert!(stdout.contains("\"suppressed\":true"), "baselined findings visible in JSON");
    assert!(!stdout.contains("\"suppressed\":false"), "no new findings");
}
