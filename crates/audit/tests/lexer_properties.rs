//! Property tests for the extended lexer: generated path and turbofish
//! token streams must round-trip through `tokenize` / `path_at` /
//! `turbofish_after` exactly.

use proptest::prelude::*;

use kucnet_audit::lexer::{path_at, tokenize, turbofish_after, TokKind};

/// Maps generated integers onto a lowercase ident (the vendored proptest
/// stub has no string strategies).
fn ident(letters: &[usize]) -> String {
    letters.iter().map(|&l| (b'a' + (l % 26) as u8) as char).collect()
}

fn segments() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(proptest::collection::vec(0usize..26, 1..6), 1..5)
        .prop_map(|v| v.iter().map(|l| ident(l)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn paths_roundtrip(segs in segments()) {
        let src = segs.join("::");
        let toks = tokenize(&src);
        // Token texts concatenate back to the source: nothing dropped.
        let rebuilt: String = toks.iter().map(|t| t.text.as_str()).collect();
        prop_assert_eq!(&rebuilt, &src);
        // Every `::` lexes to exactly one PathSep token.
        let n_seps = toks.iter().filter(|t| t.kind == TokKind::PathSep).count();
        prop_assert_eq!(n_seps, segs.len() - 1);
        // path_at from any segment recovers the whole path.
        for (i, t) in toks.iter().enumerate() {
            if t.kind == TokKind::Ident {
                prop_assert_eq!(path_at(&toks, i), segs.clone(), "from segment {}", i);
            }
        }
    }

    #[test]
    fn turbofish_roundtrip(
        name_letters in proptest::collection::vec(0usize..26, 1..6),
        tys in segments(),
    ) {
        let name = ident(&name_letters);
        // `__recv` cannot collide with the generated a-z method name.
        let src = format!("__recv.{}::<{}>()", name, tys.join(", "));
        let toks = tokenize(&src);
        let idx = toks
            .iter()
            .position(|t| t.kind == TokKind::Ident && t.text == name)
            .expect("method ident lexed");
        prop_assert_eq!(turbofish_after(&toks, idx), Some(tys));
    }

    #[test]
    fn nested_turbofish_stops_at_matching_angle(
        outer_letters in proptest::collection::vec(0usize..26, 1..6),
        inner_letters in proptest::collection::vec(0usize..26, 1..6),
    ) {
        let outer = ident(&outer_letters);
        let inner = ident(&inner_letters);
        let src = format!("v.collect::<Wrapper<{outer}<{inner}>>>()");
        let toks = tokenize(&src);
        let idx = toks
            .iter()
            .position(|t| t.kind == TokKind::Ident && t.text == "collect")
            .expect("collect lexed");
        let tys = turbofish_after(&toks, idx).expect("turbofish parsed");
        prop_assert_eq!(tys, vec!["Wrapper".to_string(), outer, inner]);
    }
}
