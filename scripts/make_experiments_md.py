#!/usr/bin/env python3
"""Compose EXPERIMENTS.md from results/*.tsv (run after run_harness.sh)."""

import os
import sys

RESULTS = os.path.join(os.path.dirname(__file__), "..", "results")


def read_tsv(name):
    path = os.path.join(RESULTS, name)
    if not os.path.exists(path):
        return None
    with open(path) as f:
        rows = [line.rstrip("\n").split("\t") for line in f if line.strip()]
    return rows


def md_table(rows):
    if not rows:
        return "_missing (run the harness binary)_\n"
    out = ["| " + " | ".join(rows[0]) + " |"]
    out.append("|" + "---|" * len(rows[0]))
    for r in rows[1:]:
        out.append("| " + " | ".join(r) + " |")
    return "\n".join(out) + "\n"


def section(title, cmd, paper_claim, verdict, tsv_name):
    rows = read_tsv(tsv_name)
    body = md_table(rows)
    return f"""## {title}

*Regenerate:* `{cmd}`

**Paper:** {paper_claim}

**Measured (this reproduction):**

{body}
**Trend check:** {verdict}

"""


HEADER = """# EXPERIMENTS — paper vs. measured

This file records, for every table and figure in the paper's evaluation
(Section V), the paper's reported result and the values measured by this
reproduction. Absolute numbers are **not comparable** — the paper runs the
full-size public datasets on GPUs, this repo runs seeded synthetic CKGs
(DESIGN.md §1) on a single CPU core — so each experiment is judged on the
*trend* the paper claims. All measured values come from one deterministic
harness run (`./run_harness.sh`, dataset seed 42, split seed 0; KUCNet d=32,
L=3, and per-scenario tuning as the paper does: K=15, lr=5e-3, 6 epochs in
the traditional setting / K=30, lr=1e-2, 5 epochs in the new-item and
new-user settings; baselines d=32, 15 epochs). TSVs live in `results/`.

Reproduction summary — which paper claims hold here:

| # | Claim | Holds? |
|---|---|---|
| 1 | KUCNet is the best or near-best model in the traditional setting on dense-KG datasets (Table III) | yes |
| 2 | KUCNet does not dominate on Alibaba-iFashion's shallow first-order KG (Table III) | yes |
| 3 | Embedding-based models collapse to ~0 on new items; inductive models survive (Table IV) | yes |
| 4 | Only the subgraph-propagation models (KUCNet, REDGNN) among *learned* methods retain substantial new-item recall (Table IV) | yes — KGIN keeps a partial signal, exactly as the paper singles out |
| 5 | KUCNet tops the new-item ranking overall (Table IV) | **partially** — at this synthetic scale the non-parametric path/walk scores (PathSim, PPR) stay strongest and REDGNN edges out KUCNet on the Last-FM-like dataset; the mechanism is analysed in DESIGN.md §6.2–6.3 |
| 6 | New-user prediction works through user-side KG edges; KUCNet/REDGNN/KGAT top tier (Table V) | yes |
| 7 | PPR preprocessing cost ≪ training cost (Table VI) | yes |
| 8 | Moderate K is optimal; new-item settings need larger K (Table VII) | traditional: yes (sharp rise, plateau from K≈15); new-item: the reachability requirement for larger K holds (DESIGN.md §6.1) but the small-scale sweep is noisy |
| 9 | L = 3 suffices; deeper models add cost without consistent gains (Table VIII) | yes |
| 10 | PPR sampling beats random sampling; attention helps (Table IX) | attention: yes, clearly; PPR-vs-random: yes in the new-item rows, within noise (slightly inverted) in the traditional rows — the paper's own margins are ≤ 0.006 |
| 11 | KUCNet converges to its best metric in less wall time than embedding GNNs (Fig. 4) | yes |
| 12 | KUCNet has far fewer parameters (no node embeddings), independent of graph size (Fig. 5) | yes |
| 13 | User-centric evaluation ≫ per-pair evaluation; PPR pruning shrinks further (Fig. 6, Eq. 12) | yes |
| 14 | Attention-pruned U-I subgraphs yield small human-readable explanations (Fig. 7) | yes |

---

"""

SECTIONS = [
    (
        "Table II — dataset statistics",
        "cargo run --release -p kucnet-bench --bin table2_stats",
        "four datasets with contrasting shape: dense multi-hop KGs (Last-FM: 23.6k users/48.1k items/465k triples; Amazon-Book: KG 3× interactions), a first-order-dominated KG (Alibaba-iFashion) and a biomedical graph with user-side edges (DisGeNet).",
        "profiles reproduce the structural contrasts at ~50–100× smaller scale: Amazon-Book-like has the densest KG relative to interactions, the iFashion-like KG is ~100% first-order item triples, DisGeNet-like has disease–disease (user-side) edges.",
        "table2_stats.tsv",
    ),
    (
        "Table III — traditional recommendation",
        "cargo run --release -p kucnet-bench --bin table3_traditional",
        "KUCNet best on Last-FM (0.1205/0.1078) and Amazon-Book (0.1718/0.0967); on Alibaba-iFashion KGIN/CF methods win (KUCNet 0.1031 vs KGIN 0.1147). KG-based > CF-based overall.",
        "KUCNet leads on the Last-FM-like and Amazon-Book-like datasets and is not the winner on the iFashion-like dataset, where its KG adds little — matching the paper's placement. (Absolute recalls are higher than the paper's because the synthetic catalogs are ~60× smaller.)",
        "table3_traditional.tsv",
    ),
    (
        "Table IV — recommendation with new items",
        "cargo run --release -p kucnet-bench --bin table4_new_item",
        "MF/FM/NFM/RippleNet/KGNN-LS/CKAN/CKE/KGAT ≈ 0; inductive methods work (new-Last-FM: PathSim 0.5248, REDGNN 0.5284, KUCNet best 0.5375); nearly everything fails on iFashion.",
        "the collapse of every embedding-based model to ≈0 reproduces exactly; KGIN is the only embedding method with a real signal (as the paper highlights); the inductive methods (PPR, PathSim, REDGNN, KUCNet) retain substantial recall; the non-parametric scores stay strongest at this synthetic scale (claim 5 above); the iFashion-like dataset degrades every method except PathSim, matching the paper's observation that only KUCNet and PathSim survive there.",
        "table4_new_item.tsv",
    ),
    (
        "Table V — disease-gene prediction (DisGeNet)",
        "cargo run --release -p kucnet-bench --bin table5_disgenet",
        "new gene: inductive methods far ahead (KUCNet 0.2574 best); new disease: user-side KG carries signal — KGAT improves markedly (0.0364), R-GCN/REDGNN strong, KUCNet best (0.2883).",
        "same two-regime behaviour: embedding models near zero on new genes while inductive models score; on new diseases the disease–disease edges make KUCNet/REDGNN/KGIN/KGAT/PPR all viable, with the subgraph methods at the top.",
        "table5_disgenet.tsv",
    ),
    (
        "Table VI — running time of PPR / training / inference",
        "cargo run --release -p kucnet-bench --bin table6_runtime",
        "PPR preprocessing 8–46 min vs training 204–335 min on the full datasets: a one-time cost far below training.",
        "the ordering PPR ≪ inference < training holds (seconds at our scale).",
        "table6_runtime.tsv",
    ),
    (
        "Table VII — sampling size K",
        "cargo run --release -p kucnet-bench --bin table7_k_sweep",
        "performance peaks at a moderate K (35 Last-FM / 120 Amazon-Book) and the optimum shifts *larger* in the new-item settings (50 / 170).",
        "the traditional rows show the paper's shape exactly — recall rises sharply from tiny K and plateaus from K≈15–20. The new-item rows are noisier at this scale (a seed-sensitive spike at K=10, saturation by K≈40); the *mechanistic* version of the paper's claim is verified separately: K below ~30 prunes away the KG edges that reach new items (DESIGN.md §6.1).",
        "table7_k_sweep.tsv",
    ),
    (
        "Table VIII — model depth L",
        "cargo run --release -p kucnet-bench --bin table8_l_sweep",
        "L = 3 is best on Last-FM/Amazon-Book (0.1205/0.1718); only new-Alibaba-iFashion needs L = 5 (0.0269 vs 0.0057 at L = 3).",
        "no consistent gain from deeper models, as in the paper: Amazon-Book-like and iFashion-like degrade at L = 5 while Last-FM-like gains only marginally; the new-item rows are noisy and never prefer depth. The paper's one exception (new-Alibaba-iFashion preferring L = 5) does not reproduce at this scale — with a first-order KG over ~700 items there is nothing new for hops 4–5 to reach.",
        "table8_l_sweep.tsv",
    ),
    (
        "Table IX — KUCNet variants (ablation)",
        "cargo run --release -p kucnet-bench --bin table9_ablation",
        "full KUCNet > KUCNet-w.o.-Attn > KUCNet-random everywhere (e.g. Last-FM 0.1205 > 0.1193 > 0.1181) — small but consistent margins.",
        "PPR sampling beats random sampling and attention contributes on the dense-KG datasets; margins are small, as in the paper.",
        "table9_ablation.tsv",
    ),
    (
        "Figure 4 — learning curves (Last-FM)",
        "cargo run --release -p kucnet-bench --bin fig4_learning_curves",
        "KUCNet reaches its best metric in less training time than KGAT/KGIN/R-GCN/CKAN; R-GCN is slowest to converge.",
        "KUCNet attains its plateau within the first epochs/seconds while the embedding GNNs need many more epochs; see seconds column (KUCNet rows are cumulative wall-clock; baseline rows are independent budget runs).",
        "fig4_learning_curves.tsv",
    ),
    (
        "Figure 5 — number of model parameters",
        "cargo run --release -p kucnet-bench --bin fig5_params",
        "KUCNet has far fewer parameters than every KG baseline because it learns no node embeddings.",
        "KUCNet is 3–13× smaller than every baseline and its count does not grow with the node count (also asserted by a unit test).",
        "fig5_params.tsv",
    ),
    (
        "Figure 6 — inference cost of the three computation strategies",
        "cargo run --release -p kucnet-bench --bin fig6_inference",
        "per-pair U-I evaluation costs millions of edges per user; the user-centric graph cuts this dramatically (Eq. 12) and PPR pruning cuts it again.",
        "edges/user drop by over an order of magnitude from KUCNet-UI to the user-centric graph and again substantially with PPR pruning; wall-clock follows the same ordering.",
        "fig6_inference.tsv",
    ),
    (
        "Figure 7 — interpretability (learned U-I subgraphs)",
        "cargo run --release -p kucnet-bench --bin fig7_explain",
        "attention ≥ 0.5 pruning leaves a handful of triples that explain each recommendation across all four scenarios.",
        "the harness prints a compact supporting subgraph (text + DOT under `results/fig7_explanations.dot`) for the traditional, new-item and DisGeNet scenarios; edges carry their learned attention weights.",
        "fig7_explanations.dot.placeholder",
    ),
    (
        "Extra ablations (beyond the paper)",
        "cargo run --release -p kucnet-bench --bin ablation_extras",
        "(not in the paper — probes the design choices DESIGN.md §5–6 call out: activation δ, message dropout, aggregation normalization.)",
        "sum aggregation (the paper's Eq. 5) is confirmed as the best choice; see DESIGN.md §6.2 for why mean/random-walk normalization lose the path-count signal.",
        "ablation_extras.tsv",
    ),
]


def main():
    parts = [HEADER]
    for title, cmd, paper, verdict, tsv in SECTIONS:
        if tsv.endswith(".placeholder"):
            rows = None
            dot = os.path.join(RESULTS, "fig7_explanations.dot")
            body = (
                "see `results/fig7_explanations.dot` (Graphviz) and the binary's stdout\n"
                if os.path.exists(dot)
                else "_missing (run the harness binary)_\n"
            )
            parts.append(
                f"## {title}\n\n*Regenerate:* `{cmd}`\n\n**Paper:** {paper}\n\n"
                f"**Measured (this reproduction):**\n\n{body}\n**Trend check:** {verdict}\n\n"
            )
        else:
            parts.append(section(title, cmd, paper, verdict, tsv))
    out = "".join(parts)
    target = os.path.join(os.path.dirname(__file__), "..", "EXPERIMENTS.md")
    with open(target, "w") as f:
        f.write(out)
    print(f"wrote {target} ({len(out)} bytes)")


if __name__ == "__main__":
    sys.exit(main())
