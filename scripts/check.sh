#!/bin/bash
# Full pre-merge check: formatting, the self-hosted audit (lint + runtime
# invariants), and the tier-1 build/test gate. Exits nonzero on the first
# failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== kucnet-audit (lint + runtime invariants) =="
cargo run -q -p kucnet-audit --bin audit

echo "== kucnet-audit --json gate (baseline diff + per-rule counts) =="
gate_start=$SECONDS
json="$(cargo run -q -p kucnet-audit --bin audit -- --json 2>/tmp/audit_counts.txt)" || {
  cat /tmp/audit_counts.txt
  echo "audit gate FAILED: new findings or stale baseline entries:"
  echo "$json" | tr ',' '\n' | grep -B1 -A4 '"suppressed":false' || true
  exit 1
}
cat /tmp/audit_counts.txt
echo "audit gate wall-time: $((SECONDS - gate_start))s"

echo "== audit baseline ratchet =="
./scripts/audit_ratchet.sh

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== fused kernels: bitwise fused-vs-unfused property suite =="
cargo test -q -p kucnet-tensor --test fused_kernels

echo "== kernel bench smoke: tiled/fused/pooled paths stay bitwise clean =="
cargo build --release -p kucnet-bench
./target/release/bench_kernels --smoke

echo "== serving: build + integration tests =="
cargo build --release -p kucnet-serve
cargo test -q -p kucnet-serve

echo "== serving: chaos suite (fault injection, self-healing, shedding) =="
cargo test -q -p kucnet-serve --test chaos

echo "== serving: hot-swap chaos (reload mid-burst, zero-downtime, attribution) =="
cargo test -q -p kucnet-serve --test swap_chaos

echo "== serving: A/B routing differential (pure-fn, restart/thread stability) =="
cargo test -q -p kucnet-serve --test ab_routing

echo "== serving: /explain parity vs offline fig7 extraction =="
cargo test -q -p kucnet-serve --test explain_parity

echo "== quantized inference: rank-parity hard gate (>= 99% top-20 overlap, all profiles) =="
cargo test -q -p kucnet-serve --test quant_parity

echo "== quantized serving bench smoke: f32 vs i8 warm path + overlap =="
./target/release/bench_quant --smoke

echo "== dynamic x swap: explain parity across ticks + reload/tick independence =="
cargo test -q -p kucnet-dynamic --test hot_swap

echo "== sharding: shard-count differential (bitwise at {1,2,8}, on-disk + served) =="
cargo test -q --test shard_differential

echo "== sharding: out-of-core scale bench smoke (gen -> 8-shard route -> Zipf sweep) =="
./target/release/bench_scale --smoke

echo "== parallel-determinism: differential suite at T=1 and T=8 =="
for t in 1 8; do
  KUCNET_DIFF_EXTRA_THREADS=$t cargo test -q --test parallel_differential
done

echo "== dynamic graphs: incremental-vs-rebuild differential + chaos + e2e =="
cargo test -q -p kucnet-dynamic

echo "All checks passed."
