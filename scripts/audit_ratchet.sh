#!/bin/bash
# Ratchet on the audit suppression baseline: the working copy of
# audit_baseline.toml may shrink relative to the committed copy (HEAD), but
# never grow, and no fingerprint may be added. Exit codes: 0 ok, 1 ratchet
# violated, 2 cannot read either copy.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="audit_baseline.toml"

if [ ! -f "$BASELINE" ]; then
  echo "audit-ratchet: no $BASELINE in working tree (treating as empty baseline)"
  exit 0
fi

if ! git rev-parse --verify -q HEAD >/dev/null; then
  echo "audit-ratchet: no HEAD commit to compare against; skipping" >&2
  exit 0
fi

if ! committed="$(git show "HEAD:$BASELINE" 2>/dev/null)"; then
  # First commit introducing the baseline: nothing to ratchet against.
  echo "audit-ratchet: $BASELINE not in HEAD yet; ratchet starts at the next commit"
  exit 0
fi

count_entries() { grep -c '^\[\[finding\]\]$' <<<"$1" || true; }
fingerprints() { grep -o '^fingerprint = ".*"$' <<<"$1" | sort || true; }

working="$(cat "$BASELINE")"
n_head="$(count_entries "$committed")"
n_work="$(count_entries "$working")"

if [ "$n_work" -gt "$n_head" ]; then
  echo "audit-ratchet: FAIL — baseline grew from $n_head to $n_work entries." >&2
  echo "Fix the new finding instead of suppressing it (or use an inline" >&2
  echo "'// #[allow(kucnet::<rule>)] — <reason>' annotation where order is provably safe)." >&2
  exit 1
fi

# A changed fingerprint means the suppressed code itself changed; that is
# only acceptable while the baseline is strictly shrinking overall.
added="$(comm -13 <(fingerprints "$committed") <(fingerprints "$working"))"
if [ -n "$added" ] && [ "$n_work" -ge "$n_head" ]; then
  echo "audit-ratchet: FAIL — new fingerprint(s) entered the baseline without a net shrink:" >&2
  echo "$added" >&2
  echo "Fix the finding instead of suppressing it (or use an inline" >&2
  echo "'// #[allow(kucnet::<rule>)] — <reason>' annotation where order is provably safe)." >&2
  exit 1
fi

echo "audit-ratchet: ok ($n_work entries, HEAD had $n_head; no new fingerprints)"
