/root/repo/target/debug/deps/kucnet_datasets-f0c7479590770091.d: crates/datasets/src/lib.rs crates/datasets/src/generator.rs crates/datasets/src/loader.rs crates/datasets/src/profile.rs crates/datasets/src/splits.rs crates/datasets/src/stats.rs

/root/repo/target/debug/deps/kucnet_datasets-f0c7479590770091: crates/datasets/src/lib.rs crates/datasets/src/generator.rs crates/datasets/src/loader.rs crates/datasets/src/profile.rs crates/datasets/src/splits.rs crates/datasets/src/stats.rs

crates/datasets/src/lib.rs:
crates/datasets/src/generator.rs:
crates/datasets/src/loader.rs:
crates/datasets/src/profile.rs:
crates/datasets/src/splits.rs:
crates/datasets/src/stats.rs:
