/root/repo/target/debug/deps/kucnet_cli-5c47078abc68fc93.d: src/bin/kucnet_cli.rs

/root/repo/target/debug/deps/kucnet_cli-5c47078abc68fc93: src/bin/kucnet_cli.rs

src/bin/kucnet_cli.rs:
