/root/repo/target/debug/deps/kucnet_audit-c8739dc4e359415d.d: crates/audit/src/lib.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs

/root/repo/target/debug/deps/libkucnet_audit-c8739dc4e359415d.rlib: crates/audit/src/lib.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs

/root/repo/target/debug/deps/libkucnet_audit-c8739dc4e359415d.rmeta: crates/audit/src/lib.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs

crates/audit/src/lib.rs:
crates/audit/src/lexer.rs:
crates/audit/src/rules.rs:
