/root/repo/target/debug/deps/audit-5e676c64abbf6415.d: crates/audit/src/bin/audit.rs

/root/repo/target/debug/deps/audit-5e676c64abbf6415: crates/audit/src/bin/audit.rs

crates/audit/src/bin/audit.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/audit
