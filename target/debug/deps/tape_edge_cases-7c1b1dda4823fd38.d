/root/repo/target/debug/deps/tape_edge_cases-7c1b1dda4823fd38.d: crates/tensor/tests/tape_edge_cases.rs

/root/repo/target/debug/deps/tape_edge_cases-7c1b1dda4823fd38: crates/tensor/tests/tape_edge_cases.rs

crates/tensor/tests/tape_edge_cases.rs:
