/root/repo/target/debug/deps/training_behavior-b10e9390d45b144e.d: crates/core/tests/training_behavior.rs

/root/repo/target/debug/deps/training_behavior-b10e9390d45b144e: crates/core/tests/training_behavior.rs

crates/core/tests/training_behavior.rs:
