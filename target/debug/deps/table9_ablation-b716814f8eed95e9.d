/root/repo/target/debug/deps/table9_ablation-b716814f8eed95e9.d: crates/bench/src/bin/table9_ablation.rs

/root/repo/target/debug/deps/table9_ablation-b716814f8eed95e9: crates/bench/src/bin/table9_ablation.rs

crates/bench/src/bin/table9_ablation.rs:
