/root/repo/target/debug/deps/kucnet-83b060a3ee4dc6f1.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/explain.rs crates/core/src/kucnet.rs crates/core/src/model.rs crates/core/src/variants.rs

/root/repo/target/debug/deps/libkucnet-83b060a3ee4dc6f1.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/explain.rs crates/core/src/kucnet.rs crates/core/src/model.rs crates/core/src/variants.rs

/root/repo/target/debug/deps/libkucnet-83b060a3ee4dc6f1.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/explain.rs crates/core/src/kucnet.rs crates/core/src/model.rs crates/core/src/variants.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/explain.rs:
crates/core/src/kucnet.rs:
crates/core/src/model.rs:
crates/core/src/variants.rs:
