/root/repo/target/debug/deps/table4_new_item-ca12b2994fce0c2e.d: crates/bench/src/bin/table4_new_item.rs

/root/repo/target/debug/deps/table4_new_item-ca12b2994fce0c2e: crates/bench/src/bin/table4_new_item.rs

crates/bench/src/bin/table4_new_item.rs:
