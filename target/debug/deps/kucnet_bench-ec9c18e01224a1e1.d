/root/repo/target/debug/deps/kucnet_bench-ec9c18e01224a1e1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libkucnet_bench-ec9c18e01224a1e1.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libkucnet_bench-ec9c18e01224a1e1.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
