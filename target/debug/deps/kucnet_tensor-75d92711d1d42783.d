/root/repo/target/debug/deps/kucnet_tensor-75d92711d1d42783.d: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/nn.rs crates/tensor/src/optim.rs crates/tensor/src/serialize.rs crates/tensor/src/tape.rs

/root/repo/target/debug/deps/libkucnet_tensor-75d92711d1d42783.rlib: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/nn.rs crates/tensor/src/optim.rs crates/tensor/src/serialize.rs crates/tensor/src/tape.rs

/root/repo/target/debug/deps/libkucnet_tensor-75d92711d1d42783.rmeta: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/nn.rs crates/tensor/src/optim.rs crates/tensor/src/serialize.rs crates/tensor/src/tape.rs

crates/tensor/src/lib.rs:
crates/tensor/src/init.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/nn.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/serialize.rs:
crates/tensor/src/tape.rs:
