/root/repo/target/debug/deps/kucnet_tensor-75dd708ffb24d685.d: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/nn.rs crates/tensor/src/optim.rs crates/tensor/src/serialize.rs crates/tensor/src/tape.rs

/root/repo/target/debug/deps/kucnet_tensor-75dd708ffb24d685: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/nn.rs crates/tensor/src/optim.rs crates/tensor/src/serialize.rs crates/tensor/src/tape.rs

crates/tensor/src/lib.rs:
crates/tensor/src/init.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/nn.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/serialize.rs:
crates/tensor/src/tape.rs:
