/root/repo/target/debug/deps/kucnet_repro-3155fac084d6c054.d: src/lib.rs

/root/repo/target/debug/deps/kucnet_repro-3155fac084d6c054: src/lib.rs

src/lib.rs:
