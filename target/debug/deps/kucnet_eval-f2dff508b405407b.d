/root/repo/target/debug/deps/kucnet_eval-f2dff508b405407b.d: crates/eval/src/lib.rs crates/eval/src/curve.rs crates/eval/src/extra_metrics.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs

/root/repo/target/debug/deps/libkucnet_eval-f2dff508b405407b.rlib: crates/eval/src/lib.rs crates/eval/src/curve.rs crates/eval/src/extra_metrics.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs

/root/repo/target/debug/deps/libkucnet_eval-f2dff508b405407b.rmeta: crates/eval/src/lib.rs crates/eval/src/curve.rs crates/eval/src/extra_metrics.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs

crates/eval/src/lib.rs:
crates/eval/src/curve.rs:
crates/eval/src/extra_metrics.rs:
crates/eval/src/metrics.rs:
crates/eval/src/ranking.rs:
