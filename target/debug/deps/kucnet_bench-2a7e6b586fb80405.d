/root/repo/target/debug/deps/kucnet_bench-2a7e6b586fb80405.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/kucnet_bench-2a7e6b586fb80405: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
