/root/repo/target/debug/deps/fig6_inference-d8a522aeedfa221e.d: crates/bench/src/bin/fig6_inference.rs

/root/repo/target/debug/deps/fig6_inference-d8a522aeedfa221e: crates/bench/src/bin/fig6_inference.rs

crates/bench/src/bin/fig6_inference.rs:
