/root/repo/target/debug/deps/dag_fuzz-1fb0d7af9c0aedf7.d: crates/tensor/tests/dag_fuzz.rs

/root/repo/target/debug/deps/dag_fuzz-1fb0d7af9c0aedf7: crates/tensor/tests/dag_fuzz.rs

crates/tensor/tests/dag_fuzz.rs:
