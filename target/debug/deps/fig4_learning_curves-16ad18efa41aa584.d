/root/repo/target/debug/deps/fig4_learning_curves-16ad18efa41aa584.d: crates/bench/src/bin/fig4_learning_curves.rs

/root/repo/target/debug/deps/fig4_learning_curves-16ad18efa41aa584: crates/bench/src/bin/fig4_learning_curves.rs

crates/bench/src/bin/fig4_learning_curves.rs:
