/root/repo/target/debug/deps/end_to_end-0e62c00ac4bb33fc.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-0e62c00ac4bb33fc: tests/end_to_end.rs

tests/end_to_end.rs:
