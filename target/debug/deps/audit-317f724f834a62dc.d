/root/repo/target/debug/deps/audit-317f724f834a62dc.d: crates/audit/src/bin/audit.rs

/root/repo/target/debug/deps/audit-317f724f834a62dc: crates/audit/src/bin/audit.rs

crates/audit/src/bin/audit.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/audit
