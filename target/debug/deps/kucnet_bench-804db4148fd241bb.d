/root/repo/target/debug/deps/kucnet_bench-804db4148fd241bb.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libkucnet_bench-804db4148fd241bb.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libkucnet_bench-804db4148fd241bb.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
