/root/repo/target/debug/deps/invariants-6e96b89b9f509a84.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-6e96b89b9f509a84: tests/invariants.rs

tests/invariants.rs:
