/root/repo/target/debug/deps/gradcheck-af4a907d63c30ec6.d: crates/tensor/tests/gradcheck.rs

/root/repo/target/debug/deps/gradcheck-af4a907d63c30ec6: crates/tensor/tests/gradcheck.rs

crates/tensor/tests/gradcheck.rs:
