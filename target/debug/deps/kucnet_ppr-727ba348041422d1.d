/root/repo/target/debug/deps/kucnet_ppr-727ba348041422d1.d: crates/ppr/src/lib.rs crates/ppr/src/power.rs crates/ppr/src/prune.rs

/root/repo/target/debug/deps/kucnet_ppr-727ba348041422d1: crates/ppr/src/lib.rs crates/ppr/src/power.rs crates/ppr/src/prune.rs

crates/ppr/src/lib.rs:
crates/ppr/src/power.rs:
crates/ppr/src/prune.rs:
