/root/repo/target/debug/deps/criterion-911c7fe7e84a49bc.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-911c7fe7e84a49bc: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
