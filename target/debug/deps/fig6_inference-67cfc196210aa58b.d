/root/repo/target/debug/deps/fig6_inference-67cfc196210aa58b.d: crates/bench/src/bin/fig6_inference.rs

/root/repo/target/debug/deps/fig6_inference-67cfc196210aa58b: crates/bench/src/bin/fig6_inference.rs

crates/bench/src/bin/fig6_inference.rs:
