/root/repo/target/debug/deps/table8_l_sweep-c818f8f817d557de.d: crates/bench/src/bin/table8_l_sweep.rs

/root/repo/target/debug/deps/table8_l_sweep-c818f8f817d557de: crates/bench/src/bin/table8_l_sweep.rs

crates/bench/src/bin/table8_l_sweep.rs:
