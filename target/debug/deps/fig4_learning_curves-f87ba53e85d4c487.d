/root/repo/target/debug/deps/fig4_learning_curves-f87ba53e85d4c487.d: crates/bench/src/bin/fig4_learning_curves.rs

/root/repo/target/debug/deps/fig4_learning_curves-f87ba53e85d4c487: crates/bench/src/bin/fig4_learning_curves.rs

crates/bench/src/bin/fig4_learning_curves.rs:
