/root/repo/target/debug/deps/table9_ablation-447418099591d859.d: crates/bench/src/bin/table9_ablation.rs

/root/repo/target/debug/deps/table9_ablation-447418099591d859: crates/bench/src/bin/table9_ablation.rs

crates/bench/src/bin/table9_ablation.rs:
