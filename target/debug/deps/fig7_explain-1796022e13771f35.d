/root/repo/target/debug/deps/fig7_explain-1796022e13771f35.d: crates/bench/src/bin/fig7_explain.rs

/root/repo/target/debug/deps/fig7_explain-1796022e13771f35: crates/bench/src/bin/fig7_explain.rs

crates/bench/src/bin/fig7_explain.rs:
