/root/repo/target/debug/deps/table8_l_sweep-efd43c592d99eac8.d: crates/bench/src/bin/table8_l_sweep.rs

/root/repo/target/debug/deps/table8_l_sweep-efd43c592d99eac8: crates/bench/src/bin/table8_l_sweep.rs

crates/bench/src/bin/table8_l_sweep.rs:
