/root/repo/target/debug/deps/table3_traditional-003bc9be392d279f.d: crates/bench/src/bin/table3_traditional.rs

/root/repo/target/debug/deps/table3_traditional-003bc9be392d279f: crates/bench/src/bin/table3_traditional.rs

crates/bench/src/bin/table3_traditional.rs:
