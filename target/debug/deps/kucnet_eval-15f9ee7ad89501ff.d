/root/repo/target/debug/deps/kucnet_eval-15f9ee7ad89501ff.d: crates/eval/src/lib.rs crates/eval/src/curve.rs crates/eval/src/extra_metrics.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs

/root/repo/target/debug/deps/libkucnet_eval-15f9ee7ad89501ff.rlib: crates/eval/src/lib.rs crates/eval/src/curve.rs crates/eval/src/extra_metrics.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs

/root/repo/target/debug/deps/libkucnet_eval-15f9ee7ad89501ff.rmeta: crates/eval/src/lib.rs crates/eval/src/curve.rs crates/eval/src/extra_metrics.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs

crates/eval/src/lib.rs:
crates/eval/src/curve.rs:
crates/eval/src/extra_metrics.rs:
crates/eval/src/metrics.rs:
crates/eval/src/ranking.rs:
