/root/repo/target/debug/deps/kucnet_eval-02d0749eb2466a85.d: crates/eval/src/lib.rs crates/eval/src/curve.rs crates/eval/src/extra_metrics.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs

/root/repo/target/debug/deps/kucnet_eval-02d0749eb2466a85: crates/eval/src/lib.rs crates/eval/src/curve.rs crates/eval/src/extra_metrics.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs

crates/eval/src/lib.rs:
crates/eval/src/curve.rs:
crates/eval/src/extra_metrics.rs:
crates/eval/src/metrics.rs:
crates/eval/src/ranking.rs:
