/root/repo/target/debug/deps/table7_k_sweep-c7228ce4debc0516.d: crates/bench/src/bin/table7_k_sweep.rs

/root/repo/target/debug/deps/table7_k_sweep-c7228ce4debc0516: crates/bench/src/bin/table7_k_sweep.rs

crates/bench/src/bin/table7_k_sweep.rs:
