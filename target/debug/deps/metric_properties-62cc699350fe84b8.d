/root/repo/target/debug/deps/metric_properties-62cc699350fe84b8.d: crates/eval/tests/metric_properties.rs

/root/repo/target/debug/deps/metric_properties-62cc699350fe84b8: crates/eval/tests/metric_properties.rs

crates/eval/tests/metric_properties.rs:
