/root/repo/target/debug/deps/table2_stats-c9a5950b8df43c20.d: crates/bench/src/bin/table2_stats.rs

/root/repo/target/debug/deps/table2_stats-c9a5950b8df43c20: crates/bench/src/bin/table2_stats.rs

crates/bench/src/bin/table2_stats.rs:
