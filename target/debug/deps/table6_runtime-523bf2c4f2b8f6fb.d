/root/repo/target/debug/deps/table6_runtime-523bf2c4f2b8f6fb.d: crates/bench/src/bin/table6_runtime.rs

/root/repo/target/debug/deps/table6_runtime-523bf2c4f2b8f6fb: crates/bench/src/bin/table6_runtime.rs

crates/bench/src/bin/table6_runtime.rs:
