/root/repo/target/debug/deps/kucnet-dbdd998a37753723.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/explain.rs crates/core/src/kucnet.rs crates/core/src/model.rs crates/core/src/variants.rs

/root/repo/target/debug/deps/kucnet-dbdd998a37753723: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/explain.rs crates/core/src/kucnet.rs crates/core/src/model.rs crates/core/src/variants.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/explain.rs:
crates/core/src/kucnet.rs:
crates/core/src/model.rs:
crates/core/src/variants.rs:
