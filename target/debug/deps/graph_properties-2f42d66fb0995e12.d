/root/repo/target/debug/deps/graph_properties-2f42d66fb0995e12.d: crates/graph/tests/graph_properties.rs

/root/repo/target/debug/deps/graph_properties-2f42d66fb0995e12: crates/graph/tests/graph_properties.rs

crates/graph/tests/graph_properties.rs:
