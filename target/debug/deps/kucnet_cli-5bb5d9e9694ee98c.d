/root/repo/target/debug/deps/kucnet_cli-5bb5d9e9694ee98c.d: src/bin/kucnet_cli.rs

/root/repo/target/debug/deps/kucnet_cli-5bb5d9e9694ee98c: src/bin/kucnet_cli.rs

src/bin/kucnet_cli.rs:
