/root/repo/target/debug/deps/kucnet_ppr-bc20d5ae3e5e5fe0.d: crates/ppr/src/lib.rs crates/ppr/src/power.rs crates/ppr/src/prune.rs

/root/repo/target/debug/deps/libkucnet_ppr-bc20d5ae3e5e5fe0.rlib: crates/ppr/src/lib.rs crates/ppr/src/power.rs crates/ppr/src/prune.rs

/root/repo/target/debug/deps/libkucnet_ppr-bc20d5ae3e5e5fe0.rmeta: crates/ppr/src/lib.rs crates/ppr/src/power.rs crates/ppr/src/prune.rs

crates/ppr/src/lib.rs:
crates/ppr/src/power.rs:
crates/ppr/src/prune.rs:
