/root/repo/target/debug/deps/table3_traditional-cc063f895c013d8f.d: crates/bench/src/bin/table3_traditional.rs

/root/repo/target/debug/deps/table3_traditional-cc063f895c013d8f: crates/bench/src/bin/table3_traditional.rs

crates/bench/src/bin/table3_traditional.rs:
