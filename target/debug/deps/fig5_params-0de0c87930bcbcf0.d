/root/repo/target/debug/deps/fig5_params-0de0c87930bcbcf0.d: crates/bench/src/bin/fig5_params.rs

/root/repo/target/debug/deps/fig5_params-0de0c87930bcbcf0: crates/bench/src/bin/fig5_params.rs

crates/bench/src/bin/fig5_params.rs:
