/root/repo/target/debug/deps/criterion-74a7ab1afdd9d317.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-74a7ab1afdd9d317.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-74a7ab1afdd9d317.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
