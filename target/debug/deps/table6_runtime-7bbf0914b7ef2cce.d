/root/repo/target/debug/deps/table6_runtime-7bbf0914b7ef2cce.d: crates/bench/src/bin/table6_runtime.rs

/root/repo/target/debug/deps/table6_runtime-7bbf0914b7ef2cce: crates/bench/src/bin/table6_runtime.rs

crates/bench/src/bin/table6_runtime.rs:
