/root/repo/target/debug/deps/table5_disgenet-9b8fb6a5db9518bc.d: crates/bench/src/bin/table5_disgenet.rs

/root/repo/target/debug/deps/table5_disgenet-9b8fb6a5db9518bc: crates/bench/src/bin/table5_disgenet.rs

crates/bench/src/bin/table5_disgenet.rs:
