/root/repo/target/debug/deps/rand-d4d287c3cb534eff.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

/root/repo/target/debug/deps/librand-d4d287c3cb534eff.rlib: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

/root/repo/target/debug/deps/librand-d4d287c3cb534eff.rmeta: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/seq.rs:
