/root/repo/target/debug/deps/table7_k_sweep-d3af150cf06af0ee.d: crates/bench/src/bin/table7_k_sweep.rs

/root/repo/target/debug/deps/table7_k_sweep-d3af150cf06af0ee: crates/bench/src/bin/table7_k_sweep.rs

crates/bench/src/bin/table7_k_sweep.rs:
