/root/repo/target/debug/deps/ablation_extras-b36c4532662655e6.d: crates/bench/src/bin/ablation_extras.rs

/root/repo/target/debug/deps/ablation_extras-b36c4532662655e6: crates/bench/src/bin/ablation_extras.rs

crates/bench/src/bin/ablation_extras.rs:
