/root/repo/target/debug/deps/kucnet_datasets-64d5268fcd44e648.d: crates/datasets/src/lib.rs crates/datasets/src/generator.rs crates/datasets/src/loader.rs crates/datasets/src/profile.rs crates/datasets/src/splits.rs crates/datasets/src/stats.rs

/root/repo/target/debug/deps/libkucnet_datasets-64d5268fcd44e648.rlib: crates/datasets/src/lib.rs crates/datasets/src/generator.rs crates/datasets/src/loader.rs crates/datasets/src/profile.rs crates/datasets/src/splits.rs crates/datasets/src/stats.rs

/root/repo/target/debug/deps/libkucnet_datasets-64d5268fcd44e648.rmeta: crates/datasets/src/lib.rs crates/datasets/src/generator.rs crates/datasets/src/loader.rs crates/datasets/src/profile.rs crates/datasets/src/splits.rs crates/datasets/src/stats.rs

crates/datasets/src/lib.rs:
crates/datasets/src/generator.rs:
crates/datasets/src/loader.rs:
crates/datasets/src/profile.rs:
crates/datasets/src/splits.rs:
crates/datasets/src/stats.rs:
