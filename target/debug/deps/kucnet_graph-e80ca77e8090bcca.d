/root/repo/target/debug/deps/kucnet_graph-e80ca77e8090bcca.d: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/ckg.rs crates/graph/src/csr.rs crates/graph/src/ids.rs crates/graph/src/layering.rs crates/graph/src/subgraph.rs crates/graph/src/triple.rs

/root/repo/target/debug/deps/libkucnet_graph-e80ca77e8090bcca.rlib: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/ckg.rs crates/graph/src/csr.rs crates/graph/src/ids.rs crates/graph/src/layering.rs crates/graph/src/subgraph.rs crates/graph/src/triple.rs

/root/repo/target/debug/deps/libkucnet_graph-e80ca77e8090bcca.rmeta: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/ckg.rs crates/graph/src/csr.rs crates/graph/src/ids.rs crates/graph/src/layering.rs crates/graph/src/subgraph.rs crates/graph/src/triple.rs

crates/graph/src/lib.rs:
crates/graph/src/analysis.rs:
crates/graph/src/ckg.rs:
crates/graph/src/csr.rs:
crates/graph/src/ids.rs:
crates/graph/src/layering.rs:
crates/graph/src/subgraph.rs:
crates/graph/src/triple.rs:
