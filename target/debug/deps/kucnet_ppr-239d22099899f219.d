/root/repo/target/debug/deps/kucnet_ppr-239d22099899f219.d: crates/ppr/src/lib.rs crates/ppr/src/power.rs crates/ppr/src/prune.rs

/root/repo/target/debug/deps/libkucnet_ppr-239d22099899f219.rlib: crates/ppr/src/lib.rs crates/ppr/src/power.rs crates/ppr/src/prune.rs

/root/repo/target/debug/deps/libkucnet_ppr-239d22099899f219.rmeta: crates/ppr/src/lib.rs crates/ppr/src/power.rs crates/ppr/src/prune.rs

crates/ppr/src/lib.rs:
crates/ppr/src/power.rs:
crates/ppr/src/prune.rs:
