/root/repo/target/debug/deps/kucnet_graph-eb1964f4986e901f.d: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/ckg.rs crates/graph/src/csr.rs crates/graph/src/ids.rs crates/graph/src/layering.rs crates/graph/src/subgraph.rs crates/graph/src/triple.rs

/root/repo/target/debug/deps/libkucnet_graph-eb1964f4986e901f.rlib: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/ckg.rs crates/graph/src/csr.rs crates/graph/src/ids.rs crates/graph/src/layering.rs crates/graph/src/subgraph.rs crates/graph/src/triple.rs

/root/repo/target/debug/deps/libkucnet_graph-eb1964f4986e901f.rmeta: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/ckg.rs crates/graph/src/csr.rs crates/graph/src/ids.rs crates/graph/src/layering.rs crates/graph/src/subgraph.rs crates/graph/src/triple.rs

crates/graph/src/lib.rs:
crates/graph/src/analysis.rs:
crates/graph/src/ckg.rs:
crates/graph/src/csr.rs:
crates/graph/src/ids.rs:
crates/graph/src/layering.rs:
crates/graph/src/subgraph.rs:
crates/graph/src/triple.rs:
