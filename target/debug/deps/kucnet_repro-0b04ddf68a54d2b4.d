/root/repo/target/debug/deps/kucnet_repro-0b04ddf68a54d2b4.d: src/lib.rs

/root/repo/target/debug/deps/libkucnet_repro-0b04ddf68a54d2b4.rlib: src/lib.rs

/root/repo/target/debug/deps/libkucnet_repro-0b04ddf68a54d2b4.rmeta: src/lib.rs

src/lib.rs:
