/root/repo/target/debug/deps/rand-6ae72451e3e11fe6.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

/root/repo/target/debug/deps/rand-6ae72451e3e11fe6: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/seq.rs:
