/root/repo/target/debug/deps/kucnet_graph-24b918cd3ea49fe8.d: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/ckg.rs crates/graph/src/csr.rs crates/graph/src/ids.rs crates/graph/src/layering.rs crates/graph/src/subgraph.rs crates/graph/src/triple.rs

/root/repo/target/debug/deps/kucnet_graph-24b918cd3ea49fe8: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/ckg.rs crates/graph/src/csr.rs crates/graph/src/ids.rs crates/graph/src/layering.rs crates/graph/src/subgraph.rs crates/graph/src/triple.rs

crates/graph/src/lib.rs:
crates/graph/src/analysis.rs:
crates/graph/src/ckg.rs:
crates/graph/src/csr.rs:
crates/graph/src/ids.rs:
crates/graph/src/layering.rs:
crates/graph/src/subgraph.rs:
crates/graph/src/triple.rs:
