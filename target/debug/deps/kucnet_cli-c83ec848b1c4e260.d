/root/repo/target/debug/deps/kucnet_cli-c83ec848b1c4e260.d: src/bin/kucnet_cli.rs

/root/repo/target/debug/deps/kucnet_cli-c83ec848b1c4e260: src/bin/kucnet_cli.rs

src/bin/kucnet_cli.rs:
