/root/repo/target/debug/deps/ablation_extras-1d6ddaa68324c796.d: crates/bench/src/bin/ablation_extras.rs

/root/repo/target/debug/deps/ablation_extras-1d6ddaa68324c796: crates/bench/src/bin/ablation_extras.rs

crates/bench/src/bin/ablation_extras.rs:
