/root/repo/target/debug/deps/table4_new_item-c69b4f611de921b9.d: crates/bench/src/bin/table4_new_item.rs

/root/repo/target/debug/deps/table4_new_item-c69b4f611de921b9: crates/bench/src/bin/table4_new_item.rs

crates/bench/src/bin/table4_new_item.rs:
