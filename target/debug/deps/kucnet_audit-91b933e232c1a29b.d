/root/repo/target/debug/deps/kucnet_audit-91b933e232c1a29b.d: crates/audit/src/lib.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs

/root/repo/target/debug/deps/kucnet_audit-91b933e232c1a29b: crates/audit/src/lib.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs

crates/audit/src/lib.rs:
crates/audit/src/lexer.rs:
crates/audit/src/rules.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/audit
