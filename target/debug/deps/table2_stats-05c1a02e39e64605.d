/root/repo/target/debug/deps/table2_stats-05c1a02e39e64605.d: crates/bench/src/bin/table2_stats.rs

/root/repo/target/debug/deps/table2_stats-05c1a02e39e64605: crates/bench/src/bin/table2_stats.rs

crates/bench/src/bin/table2_stats.rs:
