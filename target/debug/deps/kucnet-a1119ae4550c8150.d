/root/repo/target/debug/deps/kucnet-a1119ae4550c8150.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/explain.rs crates/core/src/kucnet.rs crates/core/src/model.rs crates/core/src/variants.rs

/root/repo/target/debug/deps/libkucnet-a1119ae4550c8150.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/explain.rs crates/core/src/kucnet.rs crates/core/src/model.rs crates/core/src/variants.rs

/root/repo/target/debug/deps/libkucnet-a1119ae4550c8150.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/explain.rs crates/core/src/kucnet.rs crates/core/src/model.rs crates/core/src/variants.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/explain.rs:
crates/core/src/kucnet.rs:
crates/core/src/model.rs:
crates/core/src/variants.rs:
