/root/repo/target/debug/deps/fig7_explain-462c52a6ca762a2e.d: crates/bench/src/bin/fig7_explain.rs

/root/repo/target/debug/deps/fig7_explain-462c52a6ca762a2e: crates/bench/src/bin/fig7_explain.rs

crates/bench/src/bin/fig7_explain.rs:
