/root/repo/target/debug/deps/kucnet_audit-d2cde5f2493d1aa0.d: crates/audit/src/lib.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs

/root/repo/target/debug/deps/libkucnet_audit-d2cde5f2493d1aa0.rlib: crates/audit/src/lib.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs

/root/repo/target/debug/deps/libkucnet_audit-d2cde5f2493d1aa0.rmeta: crates/audit/src/lib.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs

crates/audit/src/lib.rs:
crates/audit/src/lexer.rs:
crates/audit/src/rules.rs:
