/root/repo/target/debug/deps/table5_disgenet-901fb1f95dcbbc02.d: crates/bench/src/bin/table5_disgenet.rs

/root/repo/target/debug/deps/table5_disgenet-901fb1f95dcbbc02: crates/bench/src/bin/table5_disgenet.rs

crates/bench/src/bin/table5_disgenet.rs:
