/root/repo/target/debug/deps/generator_properties-d3c735041916b222.d: crates/datasets/tests/generator_properties.rs

/root/repo/target/debug/deps/generator_properties-d3c735041916b222: crates/datasets/tests/generator_properties.rs

crates/datasets/tests/generator_properties.rs:
