/root/repo/target/debug/deps/fig5_params-b303b4900b18316b.d: crates/bench/src/bin/fig5_params.rs

/root/repo/target/debug/deps/fig5_params-b303b4900b18316b: crates/bench/src/bin/fig5_params.rs

crates/bench/src/bin/fig5_params.rs:
