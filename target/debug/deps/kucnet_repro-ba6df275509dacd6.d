/root/repo/target/debug/deps/kucnet_repro-ba6df275509dacd6.d: src/lib.rs

/root/repo/target/debug/deps/libkucnet_repro-ba6df275509dacd6.rlib: src/lib.rs

/root/repo/target/debug/deps/libkucnet_repro-ba6df275509dacd6.rmeta: src/lib.rs

src/lib.rs:
