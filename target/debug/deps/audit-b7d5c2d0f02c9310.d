/root/repo/target/debug/deps/audit-b7d5c2d0f02c9310.d: crates/audit/src/bin/audit.rs

/root/repo/target/debug/deps/audit-b7d5c2d0f02c9310: crates/audit/src/bin/audit.rs

crates/audit/src/bin/audit.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/audit
