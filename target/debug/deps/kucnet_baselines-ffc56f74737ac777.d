/root/repo/target/debug/deps/kucnet_baselines-ffc56f74737ac777.d: crates/baselines/src/lib.rs crates/baselines/src/cke.rs crates/baselines/src/ckan.rs crates/baselines/src/common.rs crates/baselines/src/fm.rs crates/baselines/src/gnn_common.rs crates/baselines/src/kgat.rs crates/baselines/src/kgin.rs crates/baselines/src/kgnn_ls.rs crates/baselines/src/mf.rs crates/baselines/src/pathsim.rs crates/baselines/src/ppr_rec.rs crates/baselines/src/redgnn.rs crates/baselines/src/rgcn.rs crates/baselines/src/ripplenet.rs

/root/repo/target/debug/deps/libkucnet_baselines-ffc56f74737ac777.rlib: crates/baselines/src/lib.rs crates/baselines/src/cke.rs crates/baselines/src/ckan.rs crates/baselines/src/common.rs crates/baselines/src/fm.rs crates/baselines/src/gnn_common.rs crates/baselines/src/kgat.rs crates/baselines/src/kgin.rs crates/baselines/src/kgnn_ls.rs crates/baselines/src/mf.rs crates/baselines/src/pathsim.rs crates/baselines/src/ppr_rec.rs crates/baselines/src/redgnn.rs crates/baselines/src/rgcn.rs crates/baselines/src/ripplenet.rs

/root/repo/target/debug/deps/libkucnet_baselines-ffc56f74737ac777.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cke.rs crates/baselines/src/ckan.rs crates/baselines/src/common.rs crates/baselines/src/fm.rs crates/baselines/src/gnn_common.rs crates/baselines/src/kgat.rs crates/baselines/src/kgin.rs crates/baselines/src/kgnn_ls.rs crates/baselines/src/mf.rs crates/baselines/src/pathsim.rs crates/baselines/src/ppr_rec.rs crates/baselines/src/redgnn.rs crates/baselines/src/rgcn.rs crates/baselines/src/ripplenet.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cke.rs:
crates/baselines/src/ckan.rs:
crates/baselines/src/common.rs:
crates/baselines/src/fm.rs:
crates/baselines/src/gnn_common.rs:
crates/baselines/src/kgat.rs:
crates/baselines/src/kgin.rs:
crates/baselines/src/kgnn_ls.rs:
crates/baselines/src/mf.rs:
crates/baselines/src/pathsim.rs:
crates/baselines/src/ppr_rec.rs:
crates/baselines/src/redgnn.rs:
crates/baselines/src/rgcn.rs:
crates/baselines/src/ripplenet.rs:
