/root/repo/target/debug/deps/kucnet_datasets-b9de3c99cfd96d27.d: crates/datasets/src/lib.rs crates/datasets/src/generator.rs crates/datasets/src/loader.rs crates/datasets/src/profile.rs crates/datasets/src/splits.rs crates/datasets/src/stats.rs

/root/repo/target/debug/deps/libkucnet_datasets-b9de3c99cfd96d27.rlib: crates/datasets/src/lib.rs crates/datasets/src/generator.rs crates/datasets/src/loader.rs crates/datasets/src/profile.rs crates/datasets/src/splits.rs crates/datasets/src/stats.rs

/root/repo/target/debug/deps/libkucnet_datasets-b9de3c99cfd96d27.rmeta: crates/datasets/src/lib.rs crates/datasets/src/generator.rs crates/datasets/src/loader.rs crates/datasets/src/profile.rs crates/datasets/src/splits.rs crates/datasets/src/stats.rs

crates/datasets/src/lib.rs:
crates/datasets/src/generator.rs:
crates/datasets/src/loader.rs:
crates/datasets/src/profile.rs:
crates/datasets/src/splits.rs:
crates/datasets/src/stats.rs:
