/root/repo/target/debug/examples/checkpoint_and_metrics-a48f83c0c56c1e31.d: examples/checkpoint_and_metrics.rs

/root/repo/target/debug/examples/checkpoint_and_metrics-a48f83c0c56c1e31: examples/checkpoint_and_metrics.rs

examples/checkpoint_and_metrics.rs:
