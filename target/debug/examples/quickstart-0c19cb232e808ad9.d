/root/repo/target/debug/examples/quickstart-0c19cb232e808ad9.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0c19cb232e808ad9: examples/quickstart.rs

examples/quickstart.rs:
