/root/repo/target/debug/examples/probe_loader-ab24d06ff123ef40.d: examples/probe_loader.rs

/root/repo/target/debug/examples/probe_loader-ab24d06ff123ef40: examples/probe_loader.rs

examples/probe_loader.rs:
