/root/repo/target/debug/examples/new_item_recommendation-645ac6fa30cf1d4c.d: examples/new_item_recommendation.rs

/root/repo/target/debug/examples/new_item_recommendation-645ac6fa30cf1d4c: examples/new_item_recommendation.rs

examples/new_item_recommendation.rs:
