/root/repo/target/debug/examples/interpretability-3329ebf73ec2f677.d: examples/interpretability.rs

/root/repo/target/debug/examples/interpretability-3329ebf73ec2f677: examples/interpretability.rs

examples/interpretability.rs:
