/root/repo/target/debug/examples/disease_gene-aafa86c586b843f2.d: examples/disease_gene.rs

/root/repo/target/debug/examples/disease_gene-aafa86c586b843f2: examples/disease_gene.rs

examples/disease_gene.rs:
