/root/repo/target/release/examples/probe_e2e-817d01928a0afed5.d: examples/probe_e2e.rs

/root/repo/target/release/examples/probe_e2e-817d01928a0afed5: examples/probe_e2e.rs

examples/probe_e2e.rs:
