/root/repo/target/release/deps/kucnet-8b2b07c4837a1091.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/explain.rs crates/core/src/kucnet.rs crates/core/src/model.rs crates/core/src/variants.rs

/root/repo/target/release/deps/libkucnet-8b2b07c4837a1091.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/explain.rs crates/core/src/kucnet.rs crates/core/src/model.rs crates/core/src/variants.rs

/root/repo/target/release/deps/libkucnet-8b2b07c4837a1091.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/explain.rs crates/core/src/kucnet.rs crates/core/src/model.rs crates/core/src/variants.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/explain.rs:
crates/core/src/kucnet.rs:
crates/core/src/model.rs:
crates/core/src/variants.rs:
