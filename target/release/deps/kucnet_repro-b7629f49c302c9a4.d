/root/repo/target/release/deps/kucnet_repro-b7629f49c302c9a4.d: src/lib.rs

/root/repo/target/release/deps/libkucnet_repro-b7629f49c302c9a4.rlib: src/lib.rs

/root/repo/target/release/deps/libkucnet_repro-b7629f49c302c9a4.rmeta: src/lib.rs

src/lib.rs:
