/root/repo/target/release/deps/audit-88f547dc38132186.d: crates/audit/src/bin/audit.rs

/root/repo/target/release/deps/audit-88f547dc38132186: crates/audit/src/bin/audit.rs

crates/audit/src/bin/audit.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/audit
