/root/repo/target/release/deps/kucnet_ppr-0d8bda2664e0b38d.d: crates/ppr/src/lib.rs crates/ppr/src/power.rs crates/ppr/src/prune.rs

/root/repo/target/release/deps/libkucnet_ppr-0d8bda2664e0b38d.rlib: crates/ppr/src/lib.rs crates/ppr/src/power.rs crates/ppr/src/prune.rs

/root/repo/target/release/deps/libkucnet_ppr-0d8bda2664e0b38d.rmeta: crates/ppr/src/lib.rs crates/ppr/src/power.rs crates/ppr/src/prune.rs

crates/ppr/src/lib.rs:
crates/ppr/src/power.rs:
crates/ppr/src/prune.rs:
