/root/repo/target/release/deps/kucnet_eval-d20d56c72f8a1d69.d: crates/eval/src/lib.rs crates/eval/src/curve.rs crates/eval/src/extra_metrics.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs

/root/repo/target/release/deps/libkucnet_eval-d20d56c72f8a1d69.rlib: crates/eval/src/lib.rs crates/eval/src/curve.rs crates/eval/src/extra_metrics.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs

/root/repo/target/release/deps/libkucnet_eval-d20d56c72f8a1d69.rmeta: crates/eval/src/lib.rs crates/eval/src/curve.rs crates/eval/src/extra_metrics.rs crates/eval/src/metrics.rs crates/eval/src/ranking.rs

crates/eval/src/lib.rs:
crates/eval/src/curve.rs:
crates/eval/src/extra_metrics.rs:
crates/eval/src/metrics.rs:
crates/eval/src/ranking.rs:
