/root/repo/target/release/deps/kucnet_cli-694fcc22be7de58c.d: src/bin/kucnet_cli.rs

/root/repo/target/release/deps/kucnet_cli-694fcc22be7de58c: src/bin/kucnet_cli.rs

src/bin/kucnet_cli.rs:
