/root/repo/target/release/deps/kucnet_datasets-1d0d0d9402d969c7.d: crates/datasets/src/lib.rs crates/datasets/src/generator.rs crates/datasets/src/loader.rs crates/datasets/src/profile.rs crates/datasets/src/splits.rs crates/datasets/src/stats.rs

/root/repo/target/release/deps/libkucnet_datasets-1d0d0d9402d969c7.rlib: crates/datasets/src/lib.rs crates/datasets/src/generator.rs crates/datasets/src/loader.rs crates/datasets/src/profile.rs crates/datasets/src/splits.rs crates/datasets/src/stats.rs

/root/repo/target/release/deps/libkucnet_datasets-1d0d0d9402d969c7.rmeta: crates/datasets/src/lib.rs crates/datasets/src/generator.rs crates/datasets/src/loader.rs crates/datasets/src/profile.rs crates/datasets/src/splits.rs crates/datasets/src/stats.rs

crates/datasets/src/lib.rs:
crates/datasets/src/generator.rs:
crates/datasets/src/loader.rs:
crates/datasets/src/profile.rs:
crates/datasets/src/splits.rs:
crates/datasets/src/stats.rs:
