/root/repo/target/release/deps/kucnet_graph-0a994c6a47772ef8.d: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/ckg.rs crates/graph/src/csr.rs crates/graph/src/ids.rs crates/graph/src/layering.rs crates/graph/src/subgraph.rs crates/graph/src/triple.rs

/root/repo/target/release/deps/libkucnet_graph-0a994c6a47772ef8.rlib: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/ckg.rs crates/graph/src/csr.rs crates/graph/src/ids.rs crates/graph/src/layering.rs crates/graph/src/subgraph.rs crates/graph/src/triple.rs

/root/repo/target/release/deps/libkucnet_graph-0a994c6a47772ef8.rmeta: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/ckg.rs crates/graph/src/csr.rs crates/graph/src/ids.rs crates/graph/src/layering.rs crates/graph/src/subgraph.rs crates/graph/src/triple.rs

crates/graph/src/lib.rs:
crates/graph/src/analysis.rs:
crates/graph/src/ckg.rs:
crates/graph/src/csr.rs:
crates/graph/src/ids.rs:
crates/graph/src/layering.rs:
crates/graph/src/subgraph.rs:
crates/graph/src/triple.rs:
