/root/repo/target/release/deps/kucnet_tensor-fe437f2448a9788f.d: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/nn.rs crates/tensor/src/optim.rs crates/tensor/src/serialize.rs crates/tensor/src/tape.rs

/root/repo/target/release/deps/libkucnet_tensor-fe437f2448a9788f.rlib: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/nn.rs crates/tensor/src/optim.rs crates/tensor/src/serialize.rs crates/tensor/src/tape.rs

/root/repo/target/release/deps/libkucnet_tensor-fe437f2448a9788f.rmeta: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/matrix.rs crates/tensor/src/nn.rs crates/tensor/src/optim.rs crates/tensor/src/serialize.rs crates/tensor/src/tape.rs

crates/tensor/src/lib.rs:
crates/tensor/src/init.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/nn.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/serialize.rs:
crates/tensor/src/tape.rs:
