/root/repo/target/release/deps/rand-f45f5f6587200f86.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

/root/repo/target/release/deps/librand-f45f5f6587200f86.rlib: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

/root/repo/target/release/deps/librand-f45f5f6587200f86.rmeta: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/seq.rs:
