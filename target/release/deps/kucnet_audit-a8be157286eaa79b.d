/root/repo/target/release/deps/kucnet_audit-a8be157286eaa79b.d: crates/audit/src/lib.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs

/root/repo/target/release/deps/libkucnet_audit-a8be157286eaa79b.rlib: crates/audit/src/lib.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs

/root/repo/target/release/deps/libkucnet_audit-a8be157286eaa79b.rmeta: crates/audit/src/lib.rs crates/audit/src/lexer.rs crates/audit/src/rules.rs

crates/audit/src/lib.rs:
crates/audit/src/lexer.rs:
crates/audit/src/rules.rs:
