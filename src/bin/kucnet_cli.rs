//! `kucnet-cli` — train, evaluate, recommend and explain from the command
//! line, on either a synthetic profile or a real dataset in KGAT format.
//!
//! ```text
//! kucnet-cli train     --dataset lastfm --scenario traditional --epochs 5 --save model.kucp
//! kucnet-cli evaluate  --dataset amazon --scenario new-item
//! kucnet-cli recommend --dataset lastfm --user 3 -n 10
//! kucnet-cli explain   --dataset lastfm --user 3 --item 17
//! kucnet-cli stats     --dataset disgenet
//! kucnet-cli evaluate  --train-file train.txt --kg-file kg_final.txt
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use kucnet::{explain, KucNet, KucNetConfig};
use kucnet_datasets::{
    load_kgat_format, new_item_split, new_user_split, traditional_split, DatasetProfile,
    DatasetStats, GeneratedDataset, Split,
};
use kucnet_eval::{evaluate, Recommender};
use kucnet_graph::{ItemId, UserId};

fn usage() -> &'static str {
    "usage: kucnet-cli <train|evaluate|recommend|explain|stats> [options]\n\
     \n\
     dataset source (pick one):\n\
       --dataset <lastfm|amazon|ifashion|disgenet|tiny>   synthetic profile (default lastfm)\n\
       --train-file <path> --kg-file <path>               KGAT-format files\n\
     common options:\n\
       --scenario <traditional|new-item|new-user>  split type (default traditional)\n\
       --epochs <n>        training epochs (default 5)\n\
       --k <n>             PPR sampling size (default 15; 30 for new-* scenarios)\n\
       --depth <n>         GNN layers L (default 3)\n\
       --seed <n>          RNG seed (default 0)\n\
       --save <path>       write trained parameters (train)\n\
       --load <path>       read trained parameters instead of training\n\
       --user <id>         user to recommend/explain for\n\
       --item <id>         item to explain\n\
       -n <n>              number of recommendations (default 10)"
}

struct Args {
    command: String,
    flags: HashMap<String, String>,
}

fn parse_args() -> Option<Args> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next()?;
    let mut flags = HashMap::new();
    let mut key: Option<String> = None;
    for arg in argv {
        if let Some(stripped) = arg.strip_prefix("--") {
            key = Some(stripped.to_string());
            flags.entry(stripped.to_string()).or_default();
        } else if arg == "-n" {
            key = Some("n".to_string());
            flags.entry("n".to_string()).or_default();
        } else if let Some(k) = key.take() {
            flags.insert(k, arg);
        } else {
            eprintln!("unexpected argument {arg:?}");
            return None;
        }
    }
    Some(Args { command, flags })
}

impl Args {
    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }
}

fn dataset(args: &Args) -> Result<GeneratedDataset, String> {
    if let (Some(train), Some(kg)) = (args.get("train-file"), args.get("kg-file")) {
        return load_kgat_format("loaded", train, kg).map_err(|e| e.to_string());
    }
    let profile = match args.get("dataset").unwrap_or("lastfm") {
        "lastfm" => DatasetProfile::lastfm_small(),
        "amazon" => DatasetProfile::amazon_book_small(),
        "ifashion" => DatasetProfile::ifashion_small(),
        "disgenet" => DatasetProfile::disgenet_small(),
        "tiny" => DatasetProfile::tiny(),
        other => return Err(format!("unknown dataset {other:?}")),
    };
    Ok(GeneratedDataset::generate(&profile, 42))
}

fn split(args: &Args, data: &GeneratedDataset) -> Result<Split, String> {
    let seed = args.num("seed", 0u64);
    match args.get("scenario").unwrap_or("traditional") {
        "traditional" => Ok(traditional_split(data, 0.2, seed)),
        "new-item" => Ok(new_item_split(data, 0, 5, seed)),
        "new-user" => Ok(new_user_split(data, 0, 5, seed)),
        other => Err(format!("unknown scenario {other:?}")),
    }
}

fn build_model(args: &Args, data: &GeneratedDataset, split: &Split) -> Result<KucNet, String> {
    let scenario = args.get("scenario").unwrap_or("traditional");
    let default_k = if scenario.starts_with("new-") { 30 } else { 15 };
    let config = KucNetConfig {
        k: args.num("k", default_k),
        depth: args.num("depth", 3usize),
        epochs: args.num("epochs", 5usize),
        seed: args.num("seed", 0u64),
        ui_edge_dropout: if scenario.starts_with("new-") { 0.3 } else { 0.0 },
        ..KucNetConfig::default()
    };
    let mut model = KucNet::new(config, data.build_ckg(&split.train));
    if let Some(path) = args.get("load") {
        model.load_params(path).map_err(|e| e.to_string())?;
        eprintln!("loaded parameters from {path}");
    } else {
        eprintln!("training ({} epochs)...", model.config().epochs);
        model.fit_with_callback(|epoch, loss, _| {
            eprintln!("  epoch {epoch}: mean BPR loss {loss:.4}");
        });
    }
    if let Some(path) = args.get("save") {
        model.save_params(path).map_err(|e| e.to_string())?;
        eprintln!("saved parameters to {path}");
    }
    Ok(model)
}

fn run() -> Result<(), String> {
    let args = parse_args().ok_or_else(|| usage().to_string())?;
    match args.command.as_str() {
        "stats" => {
            let data = dataset(&args)?;
            println!("{}", DatasetStats::header());
            println!("{}", DatasetStats::of(&data).row());
            Ok(())
        }
        "train" => {
            let data = dataset(&args)?;
            let split = split(&args, &data)?;
            let model = build_model(&args, &data, &split)?;
            println!("trained {} ({} parameters)", model.name(), model.num_params());
            Ok(())
        }
        "evaluate" => {
            let data = dataset(&args)?;
            let split = split(&args, &data)?;
            let model = build_model(&args, &data, &split)?;
            let m = evaluate(&model, &split, args.num("n", 20usize));
            println!(
                "{} on {} [{}]: recall@{} = {:.4}, ndcg@{} = {:.4}",
                model.name(),
                data.profile.name,
                split.scenario,
                args.num("n", 20usize),
                m.recall,
                args.num("n", 20usize),
                m.ndcg
            );
            Ok(())
        }
        "recommend" => {
            let data = dataset(&args)?;
            let split = split(&args, &data)?;
            let model = build_model(&args, &data, &split)?;
            let user = UserId(args.num("user", 0u32));
            let exclude = split.train_positives().remove(&user).unwrap_or_default();
            let top = model.recommend(user, args.num("n", 10usize), &exclude);
            println!("top recommendations for user {}:", user.0);
            for (item, score) in top {
                println!("  item {:<6} score {score:+.4}", item.0);
            }
            Ok(())
        }
        "explain" => {
            let data = dataset(&args)?;
            let split = split(&args, &data)?;
            let model = build_model(&args, &data, &split)?;
            let user = UserId(args.num("user", 0u32));
            let item = ItemId(args.num("item", 0u32));
            let ex = [0.5f32, 0.2, 0.0]
                .iter()
                .map(|&t| explain(&model, user, item, t))
                .find(|e| !e.edges.is_empty())
                .unwrap_or_else(|| explain(&model, user, item, 0.0));
            print!("{}", ex.to_text(model.ckg()));
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
