//! # kucnet-repro
//!
//! Workspace root for the KUCNet (ICDE 2024) reproduction. This crate
//! re-exports the sub-crates for convenience and hosts the workspace-level
//! integration tests (`tests/`) and runnable examples (`examples/`).
//!
//! See `README.md` for the project overview, `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for paper-vs-measured results.

pub use kucnet;
pub use kucnet_baselines;
pub use kucnet_datasets;
pub use kucnet_eval;
pub use kucnet_graph;
pub use kucnet_ppr;
pub use kucnet_tensor;
