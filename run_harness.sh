#!/bin/bash
# Regenerates every table and figure of the paper (plus extra ablations).
cd /root/repo
rm -f results/HARNESS_DONE

# Refuse to spend harness time on a tree that fails its own audit (lint
# rules + runtime invariant validators; see crates/audit).
echo "=== AUDIT ($(date +%H:%M:%S)) ==="
cargo run -q -p kucnet-audit --bin audit || exit 1
./scripts/audit_ratchet.sh || exit 1

# Serving gate: the online subsystem must build and pass its end-to-end
# tests (rank parity vs offline eval) before the long benchmark run.
echo "=== SERVE TESTS ($(date +%H:%M:%S)) ==="
cargo build --release -p kucnet-serve || exit 1
cargo test -q -p kucnet-serve || exit 1

# Chaos gate: the serving path must contain injected panics (one 500 per
# faulted user, everything else answered, pool self-heals) before the
# availability numbers in BENCH_chaos.json mean anything.
echo "=== SERVE CHAOS ($(date +%H:%M:%S)) ==="
cargo test -q -p kucnet-serve --test chaos || exit 1

# Hot-swap / A/B / explain gates: a model reload landing mid-burst must be
# zero-downtime with exact per-version attribution, A/B assignment must be
# a pure function of (seed, user, weights), and the live /explain endpoint
# must stay byte-identical to the offline fig7 extraction — including
# across a dynamic refresh tick (DESIGN.md §15). BENCH_swap.json means
# nothing unless these hold.
echo "=== SWAP / AB / EXPLAIN GATES ($(date +%H:%M:%S)) ==="
cargo test -q -p kucnet-serve --test swap_chaos || exit 1
cargo test -q -p kucnet-serve --test ab_routing || exit 1
cargo test -q -p kucnet-serve --test explain_parity || exit 1
cargo test -q -p kucnet-dynamic --test hot_swap || exit 1

# Quantized-inference gate: the i8 path must hold >= 99% top-20 rank
# parity vs f32 on all four dataset profiles (DESIGN.md §16) before
# BENCH_quant.json's throughput numbers mean anything.
echo "=== QUANT RANK-PARITY GATE ($(date +%H:%M:%S)) ==="
cargo test -q -p kucnet-serve --test quant_parity || exit 1

# Parallel-determinism gate: the differential suite must prove training
# and evaluation are bitwise identical across worker-thread counts before
# any benchmark numbers are recorded (see DESIGN.md §10).
echo "=== PARALLEL DETERMINISM ($(date +%H:%M:%S)) ==="
for t in 1 8; do
  KUCNET_DIFF_EXTRA_THREADS=$t cargo test -q --test parallel_differential || exit 1
done

# Sharding gate: scoring must be bitwise identical at every shard count —
# in memory, from the on-disk streaming dataset, and through the shard
# router's batcher/caches (DESIGN.md §17) — before BENCH_scale.json's
# throughput/memory numbers mean anything.
echo "=== SHARD DIFFERENTIAL ($(date +%H:%M:%S)) ==="
cargo test -q --test shard_differential || exit 1

# Dynamic-graph gate: replayed update streams (appends + refresh ticks +
# compaction) must serve byte-identical rankings to a from-scratch rebuild
# of the final graph before BENCH_dynamic.json means anything (DESIGN.md
# §14).
echo "=== DYNAMIC DIFFERENTIAL ($(date +%H:%M:%S)) ==="
cargo test -q -p kucnet-dynamic || exit 1

# The loop below runs ./target/release/<bench> directly; `cargo build
# --release` at the workspace root only builds the root package, so build
# the bench binaries explicitly or the loop silently runs nothing.
echo "=== BUILD BENCH BINARIES ($(date +%H:%M:%S)) ==="
cargo build --release -p kucnet-bench || exit 1

for b in table2_stats fig5_params table3_traditional table4_new_item \
         table5_disgenet table9_ablation table6_runtime fig6_inference \
         fig7_explain fig4_learning_curves table7_k_sweep table8_l_sweep \
         ablation_extras bench_serve bench_chaos bench_dynamic bench_parallel \
         bench_kernels bench_swap bench_quant; do
  echo "=== RUNNING $b ($(date +%H:%M:%S)) ==="
  ./target/release/$b 2>&1
  echo "=== DONE $b ==="
done

# Out-of-core sharding smoke: small-N end-to-end (generate -> load 8 shards
# -> Zipf sweep), writing BENCH_scale_smoke.json. The recorded full >=1M-user
# sweep in BENCH_scale.json is produced by running bench_scale without
# --smoke (minutes, not harness-loop material by default).
echo "=== RUNNING bench_scale --smoke ($(date +%H:%M:%S)) ==="
./target/release/bench_scale --smoke 2>&1
echo "=== DONE bench_scale ==="
touch results/HARNESS_DONE
